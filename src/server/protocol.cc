#include "server/protocol.h"

#include <cstdlib>

#include "obs/metrics.h"
#include "util/str.h"

namespace tagg {
namespace server {

namespace {

using net::AggregateAtRequest;
using net::AggregateAtResponse;
using net::AggregateOverRequest;
using net::AggregateOverResponse;
using net::FlushRequest;
using net::InsertBatchRequest;
using net::InsertRequest;
using net::Opcode;
using net::WireInterval;
using net::WireTuple;

Result<Period> MakePeriod(Instant start, Instant end) {
  return Period::Make(start, end);
}

Result<Tuple> ToTuple(const WireTuple& wire) {
  TAGG_ASSIGN_OR_RETURN(Period valid, MakePeriod(wire.start, wire.end));
  return Tuple(wire.values, valid);
}

Result<AggregateKind> ToAggregateKind(uint8_t raw) {
  if (raw > static_cast<uint8_t>(AggregateKind::kAvg)) {
    return Status::InvalidArgument("unknown aggregate kind " +
                                   std::to_string(raw));
  }
  return static_cast<AggregateKind>(raw);
}

size_t ToAttribute(uint32_t wire_attribute) {
  return wire_attribute == net::kWireNoAttribute
             ? AggregateOptions::kNoAttribute
             : static_cast<size_t>(wire_attribute);
}

// --- backend dispatch: sharded service when present, LiveService
// otherwise.  Both modes (binary and text) funnel through these so the
// routing decision lives in exactly one place.

Status DoIngest(const ServingState& state, std::string_view relation,
                Tuple tuple) {
  if (state.shards != nullptr) {
    return state.shards->Ingest(relation, std::move(tuple));
  }
  return state.live->Ingest(relation, std::move(tuple));
}

Status DoIngestBatch(const ServingState& state, std::string_view relation,
                     std::vector<Tuple> tuples, size_t* ingested) {
  if (state.shards != nullptr) {
    return state.shards->IngestBatch(relation, std::move(tuples), ingested);
  }
  return state.live->IngestBatch(relation, std::move(tuples), ingested);
}

Status DoFlush(const ServingState& state, std::string_view relation) {
  if (state.shards != nullptr) return state.shards->Flush(relation);
  return state.live->Flush(relation);
}

Result<Value> DoAggregateAt(const ServingState& state,
                            std::string_view relation, AggregateKind kind,
                            size_t attribute, Instant t, uint64_t* epoch) {
  if (state.shards != nullptr) {
    return state.shards->AggregateAt(relation, kind, attribute, t, epoch);
  }
  const LiveAggregateIndex* index = state.live->Find(relation, kind,
                                                     attribute);
  if (index == nullptr) {
    return Status::NotFound(
        "no live index registered for " + std::string(relation) + "/" +
        std::string(AggregateKindToString(kind)));
  }
  return index->AggregateAt(t, epoch);
}

Result<AggregateSeries> DoAggregateOver(const ServingState& state,
                                        std::string_view relation,
                                        AggregateKind kind, size_t attribute,
                                        const Period& query, bool coalesce,
                                        uint64_t* epoch) {
  if (state.shards != nullptr) {
    return state.shards->AggregateOver(relation, kind, attribute, query,
                                       coalesce, epoch);
  }
  const LiveAggregateIndex* index = state.live->Find(relation, kind,
                                                     attribute);
  if (index == nullptr) {
    return Status::NotFound(
        "no live index registered for " + std::string(relation) + "/" +
        std::string(AggregateKindToString(kind)));
  }
  return index->AggregateOver(query, coalesce, epoch);
}

// ---------------------------------------------------------------------------
// Binary operations
// ---------------------------------------------------------------------------

Result<std::string> RunBinary(const ServingState& state, Opcode opcode,
                              std::string_view payload,
                              obs::QueryProfile* profile) {
  switch (opcode) {
    case Opcode::kPing: {
      net::Cursor c(payload);
      TAGG_RETURN_IF_ERROR(c.ExpectEnd());
      return std::string();
    }
    case Opcode::kInsert: {
      obs::Span decode(profile, "decode_payload");
      TAGG_ASSIGN_OR_RETURN(InsertRequest req, net::DecodeInsert(payload));
      TAGG_ASSIGN_OR_RETURN(Tuple tuple, ToTuple(req.tuple));
      decode.End();
      obs::Span ingest(profile, "ingest");
      ingest.Annotate("relation", req.relation);
      TAGG_RETURN_IF_ERROR(DoIngest(state, req.relation, std::move(tuple)));
      return std::string();
    }
    case Opcode::kInsertBatch: {
      obs::Span decode(profile, "decode_payload");
      TAGG_ASSIGN_OR_RETURN(InsertBatchRequest req,
                            net::DecodeInsertBatch(payload));
      std::vector<Tuple> tuples;
      tuples.reserve(req.tuples.size());
      for (const WireTuple& wire : req.tuples) {
        TAGG_ASSIGN_OR_RETURN(Tuple tuple, ToTuple(wire));
        tuples.push_back(std::move(tuple));
      }
      decode.End();
      obs::Span ingest(profile, "ingest_batch");
      ingest.Annotate("relation", req.relation);
      ingest.Annotate("tuples", tuples.size());
      size_t ingested = 0;
      TAGG_RETURN_IF_ERROR(
          DoIngestBatch(state, req.relation, std::move(tuples), &ingested));
      ingest.End();
      net::Writer w;
      w.U32(static_cast<uint32_t>(ingested));
      return w.Take();
    }
    case Opcode::kFlush: {
      TAGG_ASSIGN_OR_RETURN(FlushRequest req, net::DecodeFlush(payload));
      obs::Span flush(profile, "flush");
      TAGG_RETURN_IF_ERROR(DoFlush(state, req.relation));
      return std::string();
    }
    case Opcode::kAggregateAt: {
      obs::Span decode(profile, "decode_payload");
      TAGG_ASSIGN_OR_RETURN(AggregateAtRequest req,
                            net::DecodeAggregateAt(payload));
      decode.End();
      TAGG_ASSIGN_OR_RETURN(AggregateKind kind,
                            ToAggregateKind(req.aggregate));
      obs::Span probe(profile, "aggregate_at");
      probe.Annotate("relation", req.relation);
      AggregateAtResponse resp;
      TAGG_ASSIGN_OR_RETURN(
          resp.value,
          DoAggregateAt(state, req.relation, kind, ToAttribute(req.attribute),
                        req.t, &resp.epoch));
      probe.Annotate("epoch", resp.epoch);
      probe.End();
      obs::Span encode(profile, "encode_payload");
      return net::EncodeAggregateAtResponse(resp);
    }
    case Opcode::kAggregateOver: {
      obs::Span decode(profile, "decode_payload");
      TAGG_ASSIGN_OR_RETURN(AggregateOverRequest req,
                            net::DecodeAggregateOver(payload));
      decode.End();
      TAGG_ASSIGN_OR_RETURN(AggregateKind kind,
                            ToAggregateKind(req.aggregate));
      TAGG_ASSIGN_OR_RETURN(Period query,
                            MakePeriod(req.start, req.end));
      obs::Span probe(profile, "aggregate_over");
      probe.Annotate("relation", req.relation);
      AggregateOverResponse resp;
      TAGG_ASSIGN_OR_RETURN(
          AggregateSeries series,
          DoAggregateOver(state, req.relation, kind,
                          ToAttribute(req.attribute), query, req.coalesce,
                          &resp.epoch));
      probe.Annotate("epoch", resp.epoch);
      probe.Annotate("intervals", series.intervals.size());
      probe.End();
      obs::Span encode(profile, "encode_payload");
      resp.intervals.reserve(series.intervals.size());
      for (const ResultInterval& iv : series.intervals) {
        resp.intervals.push_back(WireInterval{
            iv.period.start(), iv.period.end(), iv.value});
      }
      return net::EncodeAggregateOverResponse(resp);
    }
    case Opcode::kMetrics: {
      net::Cursor c(payload);
      TAGG_RETURN_IF_ERROR(c.ExpectEnd());
      return MetricsExpositionText();
    }
  }
  return Status::InvalidArgument("unknown opcode " +
                                 std::to_string(static_cast<int>(opcode)));
}

// ---------------------------------------------------------------------------
// Text operations
// ---------------------------------------------------------------------------

Result<int64_t> ParseInt64(const std::string& word) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(word.c_str(), &end, 10);
  if (end == word.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("expected an integer, got '" + word +
                                   "'");
  }
  return static_cast<int64_t>(v);
}

/// Text-mode value literal: "null", an integer, a double, or a string.
Value ParseValueWord(const std::string& word) {
  if (EqualsIgnoreCase(word, "null")) return Value::Null();
  char* end = nullptr;
  errno = 0;
  const long long i = std::strtoll(word.c_str(), &end, 10);
  if (end != word.c_str() && *end == '\0' && errno != ERANGE) {
    return Value::Int(static_cast<int64_t>(i));
  }
  errno = 0;
  const double d = std::strtod(word.c_str(), &end);
  if (end != word.c_str() && *end == '\0' && errno != ERANGE) {
    return Value::Double(d);
  }
  return Value::String(word);
}

/// Aggregate + attribute from "<agg> <attr|*>"; attribute may be an
/// index, an attribute name (resolved against the catalog), or "*".
Result<std::pair<AggregateKind, size_t>> ParseAggAttr(
    const ServingState& state, const std::string& relation,
    const std::string& agg_word, const std::string& attr_word) {
  TAGG_ASSIGN_OR_RETURN(AggregateKind kind, ParseAggregateKind(agg_word));
  if (attr_word == "*") {
    return std::make_pair(kind, AggregateOptions::kNoAttribute);
  }
  char* end = nullptr;
  errno = 0;
  const long long idx = std::strtoll(attr_word.c_str(), &end, 10);
  if (end != attr_word.c_str() && *end == '\0') {
    // A fully numeric attribute word must be a usable index: reject
    // overflow (strtoll clamps to LLONG_MAX/LLONG_MIN and the old code
    // silently accepted the clamp) and negatives instead of falling
    // through to name resolution.
    if (errno == ERANGE || idx < 0 ||
        static_cast<unsigned long long>(idx) >=
            static_cast<unsigned long long>(AggregateOptions::kNoAttribute)) {
      return Status::InvalidArgument("attribute index '" + attr_word +
                                     "' is out of range");
    }
    return std::make_pair(kind, static_cast<size_t>(idx));
  }
  TAGG_ASSIGN_OR_RETURN(std::shared_ptr<Relation> relation_ptr,
                        state.catalog->Get(relation));
  const auto resolved = relation_ptr->schema().IndexOf(attr_word);
  if (!resolved.has_value()) {
    return Status::NotFound("relation '" + relation +
                            "' has no attribute '" + attr_word + "'");
  }
  return std::make_pair(kind, *resolved);
}

Result<std::string> RunText(const ServingState& state,
                            std::string_view line, bool* quit) {
  const std::string_view trimmed = Trim(line);
  if (trimmed.empty()) return std::string("+OK\n");
  const std::vector<std::string> words = Split(std::string(trimmed), ' ');
  const std::string& cmd = words[0];

  if (EqualsIgnoreCase(cmd, "quit") || EqualsIgnoreCase(cmd, "exit")) {
    *quit = true;
    return std::string("+BYE\n");
  }
  if (EqualsIgnoreCase(cmd, "ping")) return std::string("+PONG\n");
  if (EqualsIgnoreCase(cmd, "metrics")) {
    // Same bytes as the binary kMetrics opcode and HTTP /metrics, plus
    // the text-mode "." terminator.
    return MetricsExpositionText() + ".\n";
  }
  if (EqualsIgnoreCase(cmd, "stats")) {
    std::string out = state.shards != nullptr
                          ? state.shards->Stats().ToString()
                          : state.live->Stats().ToString();
    if (out.empty() || out.back() != '\n') out.push_back('\n');
    out += ".\n";
    return out;
  }
  if (EqualsIgnoreCase(cmd, "shards")) {
    // shards — the published topology plus per-shard health.
    if (words.size() != 1) return Status::InvalidArgument("usage: shards");
    if (state.shards == nullptr) {
      return Status::NotSupported(
          "this server does not run the sharded live service");
    }
    std::string out = state.shards->map().ToString() + "\n" +
                      state.shards->Stats().ToString();
    if (out.back() != '\n') out.push_back('\n');
    out += ".\n";
    return out;
  }
  if (EqualsIgnoreCase(cmd, "set")) {
    // set shards <n> — live rebalance to n data-quantile shards.
    if (words.size() != 3 || !EqualsIgnoreCase(words[1], "shards")) {
      return Status::InvalidArgument("usage: set shards <n>");
    }
    if (state.shards == nullptr) {
      return Status::NotSupported(
          "this server does not run the sharded live service");
    }
    TAGG_ASSIGN_OR_RETURN(int64_t n, ParseInt64(words[2]));
    if (n <= 0) {
      return Status::InvalidArgument("shard count must be positive");
    }
    TAGG_RETURN_IF_ERROR(state.shards->Reshard(static_cast<size_t>(n)));
    return "+OK " + std::to_string(state.shards->num_shards()) +
           " shard(s), topology v" +
           std::to_string(state.shards->topology_version()) + "\n";
  }
  if (EqualsIgnoreCase(cmd, "flush")) {
    if (words.size() > 2) {
      return Status::InvalidArgument("usage: flush [relation]");
    }
    TAGG_RETURN_IF_ERROR(DoFlush(state, words.size() == 2 ? words[1] : ""));
    return std::string("+OK\n");
  }
  if (EqualsIgnoreCase(cmd, "insert")) {
    // insert <relation> <start> <end> [v1 v2 ...]
    if (words.size() < 4) {
      return Status::InvalidArgument(
          "usage: insert <relation> <start> <end> [values...]");
    }
    TAGG_ASSIGN_OR_RETURN(int64_t start, ParseInt64(words[2]));
    TAGG_ASSIGN_OR_RETURN(int64_t end, ParseInt64(words[3]));
    TAGG_ASSIGN_OR_RETURN(Period valid, Period::Make(start, end));
    std::vector<Value> values;
    values.reserve(words.size() - 4);
    for (size_t i = 4; i < words.size(); ++i) {
      values.push_back(ParseValueWord(words[i]));
    }
    TAGG_RETURN_IF_ERROR(
        DoIngest(state, words[1], Tuple(std::move(values), valid)));
    return std::string("+OK\n");
  }
  if (EqualsIgnoreCase(cmd, "at")) {
    // at <relation> <aggregate> <attr|*> <t>
    if (words.size() != 5) {
      return Status::InvalidArgument(
          "usage: at <relation> <aggregate> <attribute|*> <instant>");
    }
    TAGG_ASSIGN_OR_RETURN(auto agg_attr,
                          ParseAggAttr(state, words[1], words[2], words[3]));
    TAGG_ASSIGN_OR_RETURN(int64_t t, ParseInt64(words[4]));
    uint64_t epoch = 0;
    TAGG_ASSIGN_OR_RETURN(
        Value value, DoAggregateAt(state, words[1], agg_attr.first,
                                   agg_attr.second, t, &epoch));
    return "+OK " + value.ToString() + " epoch=" + std::to_string(epoch) +
           "\n";
  }
  if (EqualsIgnoreCase(cmd, "over")) {
    // over <relation> <aggregate> <attr|*> <start> <end> [nocoalesce]
    if (words.size() != 6 && words.size() != 7) {
      return Status::InvalidArgument(
          "usage: over <relation> <aggregate> <attribute|*> <start> <end> "
          "[nocoalesce]");
    }
    bool coalesce = true;
    if (words.size() == 7) {
      if (!EqualsIgnoreCase(words[6], "nocoalesce")) {
        return Status::InvalidArgument("unknown option '" + words[6] + "'");
      }
      coalesce = false;
    }
    TAGG_ASSIGN_OR_RETURN(auto agg_attr,
                          ParseAggAttr(state, words[1], words[2], words[3]));
    TAGG_ASSIGN_OR_RETURN(int64_t start, ParseInt64(words[4]));
    TAGG_ASSIGN_OR_RETURN(int64_t end, ParseInt64(words[5]));
    TAGG_ASSIGN_OR_RETURN(Period query, Period::Make(start, end));
    uint64_t epoch = 0;
    TAGG_ASSIGN_OR_RETURN(
        AggregateSeries series,
        DoAggregateOver(state, words[1], agg_attr.first, agg_attr.second,
                        query, coalesce, &epoch));
    std::string out = "+OK " + std::to_string(series.intervals.size()) +
                      " epoch=" + std::to_string(epoch) + "\n";
    for (const ResultInterval& iv : series.intervals) {
      out += InstantToString(iv.period.start()) + " " +
             InstantToString(iv.period.end()) + " " + iv.value.ToString() +
             "\n";
    }
    out += ".\n";
    return out;
  }
  return Status::InvalidArgument("unknown command '" + cmd +
                                 "' (ping, insert, flush, at, over, "
                                 "metrics, stats, shards, set shards <n>, "
                                 "quit)");
}

}  // namespace

std::string TextErrorLine(const Status& status) {
  if (status.IsResourceExhausted()) {
    return "-BUSY " + std::string(status.message()) + "\n";
  }
  return "-ERR " + std::string(StatusCodeToString(status.code())) + ": " +
         std::string(status.message()) + "\n";
}

std::string MetricsExpositionText() {
  std::string out = obs::MetricsRegistry::Global().PrometheusText();
  if (out.empty() || out.back() != '\n') out.push_back('\n');
  return out;
}

Result<std::string> ExecuteBinaryRequest(const ServingState& state,
                                         uint8_t opcode,
                                         std::string_view payload,
                                         obs::QueryProfile* profile) {
  return RunBinary(state, static_cast<Opcode>(opcode), payload, profile);
}

std::string HandleBinaryRequest(const ServingState& state, uint8_t opcode,
                                std::string_view payload) {
  Result<std::string> result =
      RunBinary(state, static_cast<Opcode>(opcode), payload, nullptr);
  if (!result.ok()) return net::EncodeErrorFrame(result.status());
  return net::EncodeResponseFrame(StatusCode::kOk, *result);
}

std::string HandleTextRequest(const ServingState& state,
                              std::string_view line, bool* quit) {
  Result<std::string> result = RunText(state, line, quit);
  if (!result.ok()) return TextErrorLine(result.status());
  return std::move(result).value();
}

}  // namespace server
}  // namespace tagg
