// ShardedLiveService: N in-process LiveService shards behind a router —
// the horizontal scale-out of the live serving layer (ROADMAP item 2).
//
// The time-line is range-partitioned by a ShardMap (shard/shard_map.h);
// each shard owns a full LiveService with its own Catalog holding
// same-name, same-schema relations restricted to the shard's range.
// Writes route through the map: a tuple straddling a boundary is clipped
// into one fragment per overlapped shard, which preserves every
// instant's covering multiset and therefore keeps all five monoid
// aggregates exact shard-locally.  Reads scatter-gather: AggregateAt
// probes the one owning shard; AggregateOver fans the clipped sub-ranges
// out on a net::BoundedExecutor, then stitches the time-disjoint
// per-shard series back together — concatenation in shard order plus
// TSQL2 coalescing at the seams reproduces the unsharded step function
// exactly (differential-harness-verified; docs/SHARDING.md gives the
// argument).
//
// Topology management: the ShardMap and the shard states live in one
// immutable Topology behind the ShardRouter.  Readers snapshot the
// current shared_ptr (a refcount bump under a briefly-held mutex — see
// ShardRouter for why not std::atomic<shared_ptr>) and keep serving the
// version they loaded even across a concurrent rebalance (the
// shared_ptr keeps the old shards alive until the last reader drops
// them).  Writers serialize on one mutex.
//
// Live rebalance: Reshard(n) re-cuts the boundaries from the observed
// data distribution and replays every relation's tuples into fresh shard
// instances through IngestBatch + Flush — the COW engine's one-atomic
// batch publish is what makes the replayed shards appear fully built —
// then cuts over with one topology-pointer swap.  SplitShard(i) is the
// surgical variant: only shard i is rebuilt (as two shards split at its
// data median); every other shard state is reused by pointer.  Reads
// never block during either; writes stall for the replay.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "live/service.h"
#include "net/executor.h"
#include "shard/shard_map.h"
#include "temporal/catalog.h"

namespace tagg {
namespace shard {

/// Construction knobs.
struct ShardedServiceOptions {
  /// Initial shard count; boundaries split `hot_window` uniformly until
  /// a data-driven Reshard() replaces them.
  size_t shards = 1;
  /// The range the initial uniform boundaries subdivide.  Tuples outside
  /// it still land correctly (the first/last shard own the tails).
  Period hot_window{0, (static_cast<Instant>(1) << 20) - 1};
  /// Scatter-gather worker threads; 0 resolves to min(shards, 4).
  size_t scatter_workers = 0;
  /// Scatter executor queue capacity; 0 resolves to 4 * workers + 16.
  /// Overflow degrades gracefully: rejected segments run inline on the
  /// calling thread, so a saturated pool can never deadlock a query.
  size_t scatter_queue = 0;
  /// Partitioning scheme; only kRange today (see shard_map.h).
  PartitionScheme scheme = PartitionScheme::kRange;
};

/// One shard: a private catalog of range-restricted relation clones plus
/// the LiveService that indexes them.  Immutable membership — topology
/// changes build new states and publish a new Topology.
struct ShardState {
  Catalog catalog;
  LiveService service;
};

/// The immutable routing table: which ranges exist and who serves them.
struct Topology {
  uint64_t version = 1;
  ShardMap map;
  std::vector<std::shared_ptr<ShardState>> shards;
};

/// The publish point between topology writers and readers.  One pointer
/// swap cuts a rebalance over; a Snapshot pins the topology it saw for
/// as long as the caller holds it.  The critical section on either side
/// is a refcount bump / pointer swap — rebuilds happen entirely outside
/// it — so readers never wait on a rebalance, only on each other's
/// nanosecond-scale copies.  (Not std::atomic<shared_ptr>: libstdc++'s
/// _Sp_atomic unlocks its reader spinlock with a relaxed fetch_sub,
/// which is a formal data race TSan rightly flags.)
class ShardRouter {
 public:
  explicit ShardRouter(std::shared_ptr<const Topology> initial)
      : topology_(std::move(initial)) {}

  std::shared_ptr<const Topology> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return topology_;
  }

  void Publish(std::shared_ptr<const Topology> next) {
    std::shared_ptr<const Topology> retired;  // destroy outside the lock
    std::lock_guard<std::mutex> lock(mu_);
    retired = std::exchange(topology_, std::move(next));
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const Topology> topology_;
};

/// Health/stats snapshot of one shard, for /statz and the text protocol.
struct ShardInfo {
  size_t id = 0;
  Period range;
  /// Clipped tuple fragments resident in this shard's relations.
  uint64_t tuples = 0;
  LiveServiceStats service;
};

/// Service-wide snapshot.
struct ShardedStats {
  uint64_t topology_version = 0;
  size_t num_shards = 0;
  /// Logical (unclipped) tuples across the source relations.
  uint64_t logical_tuples = 0;
  uint64_t scatter_queries = 0;
  uint64_t rebalances = 0;
  std::vector<ShardInfo> shards;

  std::string ToString() const;
};

/// The sharded drop-in for LiveService: same registration/ingest/probe
/// surface, horizontally partitioned behind the router.
class ShardedLiveService {
 public:
  explicit ShardedLiveService(ShardedServiceOptions options = {});
  ~ShardedLiveService();

  ShardedLiveService(const ShardedLiveService&) = delete;
  ShardedLiveService& operator=(const ShardedLiveService&) = delete;

  /// Registers a live index for `aggregate` over `attribute_name` of
  /// `relation_name` on EVERY shard, resolving and type-checking against
  /// `catalog` exactly like LiveService::RegisterIndex.  The relation's
  /// current contents are split and loaded into the shards; later
  /// Ingest() calls keep the source relation and every shard in step.
  Status RegisterIndex(const Catalog& catalog,
                       std::string_view relation_name,
                       AggregateKind aggregate,
                       std::string_view attribute_name = {});

  /// True when every shard holds an index for (relation, aggregate,
  /// attribute) — registration is all-shards-or-none.
  bool Serves(std::string_view relation_name, AggregateKind aggregate,
              size_t attribute) const;

  /// Serves() and the shards have absorbed exactly the source relation's
  /// current contents (nothing appended behind the router's back).  The
  /// executor's routing check.
  bool ServesFresh(const Relation& relation, AggregateKind aggregate,
                   size_t attribute) const;

  /// Appends `tuple` to the source relation, clips it at the shard
  /// boundaries, and ingests each fragment into its owning shard.
  Status Ingest(std::string_view relation_name, Tuple tuple);

  /// Batch ingest: tuples are validated/appended in order (a failure
  /// truncates at the offending tuple, like LiveService::IngestBatch),
  /// then each shard absorbs its fragments through one IngestBatch —
  /// one published version per shard index.
  Status IngestBatch(std::string_view relation_name,
                     std::vector<Tuple> tuples, size_t* ingested = nullptr);

  /// Publishes write-batched inserts on every shard (empty = all
  /// relations).
  Status Flush(std::string_view relation_name = {});

  /// The aggregate's value at `t`: routed to the one owning shard.
  Result<Value> AggregateAt(std::string_view relation_name,
                            AggregateKind aggregate, size_t attribute,
                            Instant t,
                            uint64_t* snapshot_epoch = nullptr) const;

  /// The constant-interval series over `query`: clipped per overlapping
  /// shard, evaluated scatter-gather, stitched exactly.  `snapshot_epoch`
  /// receives the sum of the probed shards' epochs (monotone within one
  /// topology version).
  Result<AggregateSeries> AggregateOver(
      std::string_view relation_name, AggregateKind aggregate,
      size_t attribute, const Period& query, bool coalesce = true,
      uint64_t* snapshot_epoch = nullptr) const;

  /// Live rebalance to `new_shards` ranges cut at the observed data's
  /// start-instant quantiles (uniform over the hot window when empty).
  /// Replays every relation into fresh shard instances and publishes the
  /// new topology with one pointer swap; readers keep serving the old one
  /// throughout.
  Status Reshard(size_t new_shards);

  /// Splits one shard at its data median (range midpoint when empty)
  /// into two, rebuilding only that shard; all others are reused.
  Status SplitShard(size_t shard_id);

  size_t num_shards() const { return router_.Snapshot()->map.num_shards(); }
  uint64_t topology_version() const { return router_.Snapshot()->version; }
  ShardMap map() const { return router_.Snapshot()->map; }

  /// All registrations, sorted (same shape as LiveService::Keys()).
  std::vector<LiveIndexKey> Keys() const;

  ShardedStats Stats() const;

 private:
  struct Registration {
    std::string relation;  // lowercased
    AggregateKind aggregate = AggregateKind::kCount;
    size_t attribute = AggregateOptions::kNoAttribute;
    std::string attribute_name;  // as registered, for shard re-registration
  };

  struct RelationState {
    std::shared_ptr<Relation> relation;  // the caller's source relation
    /// Logical tuples the shards have absorbed; freshness compares this
    /// against relation->size().
    std::atomic<uint64_t> absorbed{0};
  };

  /// Builds one empty shard state carrying every registered relation
  /// (empty clones) and every registered index.
  Result<std::shared_ptr<ShardState>> MakeShardState() const;

  /// Replays the source tuples overlapping `range`, clipped to it, into
  /// `state` via IngestBatch + Flush.
  Status ReplayRange(const Period& range, ShardState& state) const;

  /// Builds a full topology for `map`, replaying every relation, and
  /// publishes it.  Caller holds write_mutex_.
  Status RebuildAll(ShardMap map);

  /// Range starts cutting the observed data into `shards` near-equal
  /// populations; uniform over the hot window when there is no data.
  ShardMap DataQuantileMap(size_t shards) const;

  void UpdateShardGauges(const Topology& topo) const;

  const ShardedServiceOptions options_;
  std::unique_ptr<net::BoundedExecutor> scatter_;

  /// Serializes registration, ingest, flush, and rebalance.
  mutable std::mutex write_mutex_;
  std::vector<Registration> registrations_;  // guarded by write_mutex_
  std::map<std::string, std::shared_ptr<RelationState>>
      relations_;  // guarded by relations_mutex_ for lookup, write_mutex_
                   // for mutation
  mutable std::mutex relations_mutex_;

  ShardRouter router_;
  mutable std::atomic<uint64_t> scatter_queries_{0};
  std::atomic<uint64_t> rebalances_{0};
  /// Highest shard count ever published, so a shrink can zero the
  /// higher-numbered per-shard gauges instead of leaving ghosts.
  mutable std::atomic<size_t> max_shards_published_{0};
};

}  // namespace shard
}  // namespace tagg
