#include "shard/shard_map.h"

#include <algorithm>

namespace tagg {
namespace shard {

ShardMap::ShardMap() : starts_{kOrigin} {}

Result<ShardMap> ShardMap::FromStarts(std::vector<Instant> starts) {
  if (starts.empty() || starts.front() != kOrigin) {
    return Status::InvalidArgument(
        "shard map starts must begin with the time-line origin");
  }
  for (size_t i = 1; i < starts.size(); ++i) {
    if (starts[i] <= starts[i - 1]) {
      return Status::InvalidArgument(
          "shard map starts must be strictly increasing");
    }
    if (starts[i] > kForever) {
      return Status::InvalidArgument(
          "shard map start beyond the end of the time-line");
    }
  }
  return ShardMap(std::move(starts));
}

Result<ShardMap> ShardMap::MakeUniform(size_t shards, const Period& hot) {
  if (shards == 0) {
    return Status::InvalidArgument("shard count must be at least 1");
  }
  std::vector<Instant> starts{kOrigin};
  // Unsigned width arithmetic: hot may legally span the whole line.
  const uint64_t width = static_cast<uint64_t>(hot.end()) -
                         static_cast<uint64_t>(hot.start()) + 1;
  for (size_t i = 1; i < shards; ++i) {
    const Instant candidate =
        hot.start() + static_cast<Instant>(width / shards * i);
    if (candidate > starts.back() && candidate <= kForever) {
      starts.push_back(candidate);
    }
  }
  return ShardMap(std::move(starts));
}

size_t ShardMap::OwnerOf(Instant t) const {
  // First start > t, minus one: the shard whose range begins at or
  // before t.
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), t);
  return static_cast<size_t>(it - starts_.begin()) - 1;
}

Period ShardMap::RangeOf(size_t shard) const {
  const Instant lo = starts_[shard];
  const Instant hi =
      shard + 1 < starts_.size() ? starts_[shard + 1] - 1 : kForever;
  return Period(lo, hi);
}

std::vector<ShardSlice> ShardMap::SplitOver(const Period& p) const {
  std::vector<ShardSlice> slices;
  const size_t first = OwnerOf(p.start());
  const size_t last = OwnerOf(p.end());
  slices.reserve(last - first + 1);
  for (size_t shard = first; shard <= last; ++shard) {
    const Period range = RangeOf(shard);
    slices.push_back(ShardSlice{
        shard, Period(std::max(range.start(), p.start()),
                      std::min(range.end(), p.end()))});
  }
  return slices;
}

std::string ShardMap::ToString() const {
  std::string out = std::to_string(num_shards()) + " shard" +
                    (num_shards() == 1 ? "" : "s") + ":";
  for (size_t i = 0; i < num_shards(); ++i) {
    out += " " + RangeOf(i).ToString();
  }
  return out;
}

}  // namespace shard
}  // namespace tagg
