#include "shard/sharded_service.h"

#include <algorithm>
#include <latch>
#include <optional>

#include "obs/metrics.h"
#include "util/str.h"

namespace tagg {
namespace shard {

namespace {

/// Hard ceiling on the shard count: beyond this the per-shard fixed
/// costs (catalogs, tree roots, scatter segments) dwarf any win.
constexpr size_t kMaxShards = 1024;

obs::Counter& IngestRoutedTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_shard_ingest_routed_total",
      "Clipped tuple fragments routed into shards");
  return c;
}

obs::Counter& StraddleSplitsTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_shard_straddle_splits_total",
      "Ingested tuples clipped across a shard boundary");
  return c;
}

obs::Counter& ScatterTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_shard_scatter_total",
      "Range queries answered by multi-shard scatter-gather");
  return c;
}

obs::Counter& ScatterSubqueriesTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_shard_scatter_subqueries_total",
      "Per-shard sub-queries issued by scatter-gather");
  return c;
}

obs::Counter& ScatterInlineTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_shard_scatter_inline_total",
      "Scatter segments run inline after executor saturation");
  return c;
}

obs::Counter& RebalanceTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_shard_rebalance_total",
      "Topology rebalances (reshard + split) published");
  return c;
}

obs::Counter& RebalanceTuplesTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_shard_rebalance_tuples_total",
      "Tuple fragments replayed into rebuilt shards");
  return c;
}

obs::Gauge& ShardCountGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "tagg_shard_count", "Shards in the published topology");
  return g;
}

obs::Gauge& TopologyVersionGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "tagg_shard_topology_version", "Published topology version");
  return g;
}

/// Fragments resident in one shard, derived from its index epochs (the
/// shard relation's raw size is not safely readable concurrently; the
/// epoch is, and equals the fragments the shard has seen per relation).
uint64_t ShardFragmentCount(const LiveServiceStats& stats) {
  uint64_t total = 0;
  std::string_view current;
  uint64_t relation_max = 0;
  for (const auto& [key, index_stats] : stats.indexes) {
    if (key.relation != current) {
      total += relation_max;
      current = key.relation;
      relation_max = 0;
    }
    relation_max = std::max(relation_max, index_stats.epoch);
  }
  return total + relation_max;
}

std::shared_ptr<const Topology> InitialTopology(
    const ShardedServiceOptions& options) {
  auto topo = std::make_shared<Topology>();
  topo->version = 1;
  auto map = ShardMap::MakeUniform(
      std::clamp<size_t>(options.shards, 1, kMaxShards), options.hot_window);
  if (map.ok()) topo->map = std::move(map).value();
  topo->shards.reserve(topo->map.num_shards());
  for (size_t i = 0; i < topo->map.num_shards(); ++i) {
    topo->shards.push_back(std::make_shared<ShardState>());
  }
  return topo;
}

}  // namespace

std::string ShardedStats::ToString() const {
  std::string out =
      "sharded live service: topology v" + std::to_string(topology_version) +
      ", " + std::to_string(num_shards) + " shard(s), " +
      std::to_string(logical_tuples) + " logical tuple(s), " +
      std::to_string(scatter_queries) + " scatter quer" +
      (scatter_queries == 1 ? "y" : "ies") + ", " +
      std::to_string(rebalances) + " rebalance(s)\n";
  for (const ShardInfo& s : shards) {
    out += "  shard " + std::to_string(s.id) + " " + s.range.ToString() +
           ": " + std::to_string(s.tuples) + " fragment(s), " +
           std::to_string(s.service.indexes.size()) + " index(es)\n";
  }
  return out;
}

ShardedLiveService::ShardedLiveService(ShardedServiceOptions options)
    : options_(options), router_(InitialTopology(options)) {
  const size_t shards = router_.Snapshot()->map.num_shards();
  const size_t workers = options_.scatter_workers != 0
                             ? options_.scatter_workers
                             : std::min<size_t>(shards, 4);
  const size_t queue = options_.scatter_queue != 0 ? options_.scatter_queue
                                                   : 4 * workers + 16;
  scatter_ = std::make_unique<net::BoundedExecutor>(workers, queue);
  UpdateShardGauges(*router_.Snapshot());
}

ShardedLiveService::~ShardedLiveService() {
  if (scatter_ != nullptr) scatter_->Drain();
}

Status ShardedLiveService::RegisterIndex(const Catalog& catalog,
                                         std::string_view relation_name,
                                         AggregateKind aggregate,
                                         std::string_view attribute_name) {
  TAGG_ASSIGN_OR_RETURN(std::shared_ptr<Relation> relation,
                        catalog.Get(relation_name));

  // Attribute resolution and type checks mirror LiveService::RegisterIndex
  // so routing through the sharded front produces identical errors.
  size_t attribute = AggregateOptions::kNoAttribute;
  if (!attribute_name.empty()) {
    const auto index = relation->schema().IndexOf(attribute_name);
    if (!index.has_value()) {
      return Status::NotFound("relation '" + relation->name() +
                              "' has no attribute '" +
                              std::string(attribute_name) + "'");
    }
    attribute = *index;
  }
  if (aggregate != AggregateKind::kCount) {
    if (attribute == AggregateOptions::kNoAttribute) {
      return Status::InvalidArgument(
          std::string(AggregateKindToString(aggregate)) +
          " live index requires an attribute to aggregate");
    }
    const ValueType type = relation->schema().attribute(attribute).type;
    if (type != ValueType::kInt && type != ValueType::kDouble) {
      return Status::NotSupported(
          std::string(AggregateKindToString(aggregate)) +
          " over non-numeric attribute '" +
          relation->schema().attribute(attribute).name + "'");
    }
  }

  std::lock_guard<std::mutex> write(write_mutex_);
  const std::string lowered = ToLower(relation_name);
  const LiveIndexKey key{lowered, aggregate, attribute};
  for (const Registration& r : registrations_) {
    if (r.relation == lowered && r.aggregate == aggregate &&
        r.attribute == attribute) {
      return Status::AlreadyExists("live index " + key.ToString() +
                                   " already registered");
    }
  }
  registrations_.push_back(Registration{lowered, aggregate, attribute,
                                        std::string(attribute_name)});
  bool added_relation = false;
  {
    std::lock_guard<std::mutex> rel_guard(relations_mutex_);
    auto& slot = relations_[lowered];
    if (slot == nullptr) {
      slot = std::make_shared<RelationState>();
      slot->relation = std::move(relation);
      added_relation = true;
    }
  }

  // Every shard gains the new index and absorbs the relation's current
  // contents through a full rebuild of the (unchanged) map.
  const Status rebuilt = RebuildAll(router_.Snapshot()->map);
  if (!rebuilt.ok()) {
    registrations_.pop_back();
    if (added_relation) {
      std::lock_guard<std::mutex> rel_guard(relations_mutex_);
      relations_.erase(lowered);
    }
  }
  return rebuilt;
}

bool ShardedLiveService::Serves(std::string_view relation_name,
                                AggregateKind aggregate,
                                size_t attribute) const {
  const auto topo = router_.Snapshot();
  if (topo->shards.empty()) return false;
  // Registration is all-shards-or-none, so shard 0 answers for all.
  return topo->shards[0]->service.Find(relation_name, aggregate,
                                       attribute) != nullptr;
}

bool ShardedLiveService::ServesFresh(const Relation& relation,
                                     AggregateKind aggregate,
                                     size_t attribute) const {
  if (!Serves(relation.name(), aggregate, attribute)) return false;
  std::lock_guard<std::mutex> rel_guard(relations_mutex_);
  const auto it = relations_.find(ToLower(relation.name()));
  if (it == relations_.end()) return false;
  // Same object, and the shards have absorbed exactly its contents.
  return it->second->relation.get() == &relation &&
         it->second->absorbed.load(std::memory_order_relaxed) ==
             relation.size();
}

Status ShardedLiveService::Ingest(std::string_view relation_name,
                                  Tuple tuple) {
  const std::string lowered = ToLower(relation_name);
  std::lock_guard<std::mutex> write(write_mutex_);
  std::shared_ptr<RelationState> rel_state;
  {
    std::lock_guard<std::mutex> rel_guard(relations_mutex_);
    const auto it = relations_.find(lowered);
    if (it != relations_.end()) rel_state = it->second;
  }
  if (rel_state == nullptr) {
    return Status::NotFound("no live index registered for relation '" +
                            std::string(relation_name) + "'");
  }

  // Validate + append the original once; the shards then absorb clipped
  // fragments whose union covers exactly the tuple's validity.
  TAGG_RETURN_IF_ERROR(rel_state->relation->Append(tuple));
  const auto topo = router_.Snapshot();
  const auto slices = topo->map.SplitOver(tuple.valid());
  if (slices.size() > 1) StraddleSplitsTotal().Increment();
  for (const ShardSlice& slice : slices) {
    Status routed = topo->shards[slice.shard]->service.Ingest(
        lowered, Tuple(tuple.values(), slice.range));
    if (!routed.ok()) {
      return Status::Internal("shard " + std::to_string(slice.shard) +
                              " rejected a routed fragment: " +
                              std::string(routed.message()));
    }
  }
  IngestRoutedTotal().Increment(slices.size());
  rel_state->absorbed.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status ShardedLiveService::IngestBatch(std::string_view relation_name,
                                       std::vector<Tuple> tuples,
                                       size_t* ingested) {
  if (ingested != nullptr) *ingested = 0;
  if (tuples.empty()) return Status::OK();
  const std::string lowered = ToLower(relation_name);
  std::lock_guard<std::mutex> write(write_mutex_);
  std::shared_ptr<RelationState> rel_state;
  {
    std::lock_guard<std::mutex> rel_guard(relations_mutex_);
    const auto it = relations_.find(lowered);
    if (it != relations_.end()) rel_state = it->second;
  }
  if (rel_state == nullptr) {
    return Status::NotFound("no live index registered for relation '" +
                            std::string(relation_name) + "'");
  }

  // Same truncate-at-first-bad-tuple contract as LiveService::IngestBatch.
  size_t accepted = 0;
  Status append_status = Status::OK();
  for (Tuple& tuple : tuples) {
    append_status = rel_state->relation->Append(tuple);
    if (!append_status.ok()) break;
    ++accepted;
  }
  tuples.resize(accepted);

  const auto topo = router_.Snapshot();
  std::vector<std::vector<Tuple>> per_shard(topo->map.num_shards());
  for (const Tuple& tuple : tuples) {
    const auto slices = topo->map.SplitOver(tuple.valid());
    if (slices.size() > 1) StraddleSplitsTotal().Increment();
    for (const ShardSlice& slice : slices) {
      per_shard[slice.shard].emplace_back(tuple.values(), slice.range);
    }
  }
  uint64_t fragments = 0;
  for (size_t i = 0; i < per_shard.size(); ++i) {
    if (per_shard[i].empty()) continue;
    fragments += per_shard[i].size();
    Status routed =
        topo->shards[i]->service.IngestBatch(lowered, std::move(per_shard[i]));
    if (!routed.ok()) {
      return Status::Internal("shard " + std::to_string(i) +
                              " rejected a routed batch: " +
                              std::string(routed.message()));
    }
  }
  IngestRoutedTotal().Increment(fragments);
  rel_state->absorbed.fetch_add(accepted, std::memory_order_relaxed);
  if (ingested != nullptr) *ingested = accepted;
  return append_status;
}

Status ShardedLiveService::Flush(std::string_view relation_name) {
  std::lock_guard<std::mutex> write(write_mutex_);
  if (!relation_name.empty()) {
    std::lock_guard<std::mutex> rel_guard(relations_mutex_);
    if (!relations_.contains(ToLower(relation_name))) {
      return Status::NotFound("no live index registered for relation '" +
                              std::string(relation_name) + "'");
    }
  }
  const auto topo = router_.Snapshot();
  for (const auto& shard : topo->shards) {
    TAGG_RETURN_IF_ERROR(shard->service.Flush(relation_name));
  }
  return Status::OK();
}

Result<Value> ShardedLiveService::AggregateAt(std::string_view relation_name,
                                              AggregateKind aggregate,
                                              size_t attribute, Instant t,
                                              uint64_t* snapshot_epoch) const {
  if (t < kOrigin || t > kForever) {
    return Status::InvalidArgument("instant " + std::to_string(t) +
                                   " outside the time-line");
  }
  const auto topo = router_.Snapshot();
  const size_t shard = topo->map.OwnerOf(t);
  const LiveAggregateIndex* index =
      topo->shards[shard]->service.Find(relation_name, aggregate, attribute);
  if (index == nullptr) {
    return Status::NotFound(
        "no live index registered for " +
        LiveIndexKey{ToLower(relation_name), aggregate, attribute}
            .ToString());
  }
  return index->AggregateAt(t, snapshot_epoch);
}

Result<AggregateSeries> ShardedLiveService::AggregateOver(
    std::string_view relation_name, AggregateKind aggregate, size_t attribute,
    const Period& query, bool coalesce, uint64_t* snapshot_epoch) const {
  const auto topo = router_.Snapshot();
  const auto slices = topo->map.SplitOver(query);

  // Resolve every segment's index up front so a missing registration
  // fails before any work is scattered.
  std::vector<const LiveAggregateIndex*> indexes(slices.size(), nullptr);
  for (size_t i = 0; i < slices.size(); ++i) {
    indexes[i] = topo->shards[slices[i].shard]->service.Find(
        relation_name, aggregate, attribute);
    if (indexes[i] == nullptr) {
      return Status::NotFound(
          "no live index registered for " +
          LiveIndexKey{ToLower(relation_name), aggregate, attribute}
              .ToString());
    }
  }
  if (slices.size() == 1) {
    return indexes[0]->AggregateOver(slices[0].range, coalesce,
                                     snapshot_epoch);
  }

  ScatterTotal().Increment();
  ScatterSubqueriesTotal().Increment(slices.size());
  scatter_queries_.fetch_add(1, std::memory_order_relaxed);

  // Scatter: segments 1..n-1 go to the pool (inline on rejection so a
  // saturated pool degrades instead of deadlocking); segment 0 runs on
  // the calling thread, which therefore always contributes a worker.
  // Per-segment series are requested un-coalesced — one coalesce pass
  // over the stitched result handles the shard-seam merges and any
  // interior merges in one go.
  std::vector<std::optional<Result<AggregateSeries>>> slots(slices.size());
  std::vector<uint64_t> epochs(slices.size(), 0);
  std::latch done(static_cast<std::ptrdiff_t>(slices.size() - 1));
  auto run_segment = [&](size_t i) {
    slots[i].emplace(
        indexes[i]->AggregateOver(slices[i].range, false, &epochs[i]));
  };
  for (size_t i = 1; i < slices.size(); ++i) {
    Status submitted = scatter_->TrySubmit([&run_segment, &done, i] {
      run_segment(i);
      done.count_down();
    });
    if (!submitted.ok()) {
      ScatterInlineTotal().Increment();
      run_segment(i);
      done.count_down();
    }
  }
  run_segment(0);
  done.wait();

  // Gather: the per-shard series are time-disjoint and ascending, so the
  // stitched series is their concatenation; the seam check is defensive
  // (a violation would mean the map and the clipping disagree).
  AggregateSeries merged;
  size_t total_intervals = 0;
  for (const auto& slot : slots) {
    if (!slot.has_value()) {
      return Status::Internal("scatter segment produced no result");
    }
    if (!slot->ok()) return slot->status();
    total_intervals += slot->value().intervals.size();
  }
  merged.intervals.reserve(total_intervals);
  uint64_t epoch_sum = 0;
  merged.stats.relation_scans = 0;
  for (size_t i = 0; i < slices.size(); ++i) {
    AggregateSeries& part = slots[i]->value();
    if (!merged.intervals.empty() && !part.intervals.empty() &&
        !merged.intervals.back().period.MeetsBefore(
            part.intervals.front().period)) {
      return Status::Internal(
          "sharded series do not meet exactly at a shard boundary");
    }
    std::move(part.intervals.begin(), part.intervals.end(),
              std::back_inserter(merged.intervals));
    epoch_sum += epochs[i];
    // Stats aggregate across shards: work and footprints add (the query
    // really did touch that many resident nodes), depth reports the
    // deepest per-shard tree.
    merged.stats.tuples_processed += part.stats.tuples_processed;
    merged.stats.peak_live_nodes += part.stats.peak_live_nodes;
    merged.stats.peak_live_bytes += part.stats.peak_live_bytes;
    merged.stats.peak_paper_bytes += part.stats.peak_paper_bytes;
    merged.stats.nodes_allocated += part.stats.nodes_allocated;
    merged.stats.work_steps += part.stats.work_steps;
    merged.stats.tree_depth =
        std::max(merged.stats.tree_depth, part.stats.tree_depth);
  }
  if (coalesce) {
    merged.intervals = CoalesceEqualValues(std::move(merged.intervals));
  }
  merged.stats.intervals_emitted = merged.intervals.size();
  if (snapshot_epoch != nullptr) *snapshot_epoch = epoch_sum;
  return merged;
}

Status ShardedLiveService::Reshard(size_t new_shards) {
  if (new_shards == 0 || new_shards > kMaxShards) {
    return Status::InvalidArgument("shard count must be in [1, " +
                                   std::to_string(kMaxShards) + "]");
  }
  std::lock_guard<std::mutex> write(write_mutex_);
  TAGG_RETURN_IF_ERROR(RebuildAll(DataQuantileMap(new_shards)));
  rebalances_.fetch_add(1, std::memory_order_relaxed);
  RebalanceTotal().Increment();
  return Status::OK();
}

Status ShardedLiveService::SplitShard(size_t shard_id) {
  std::lock_guard<std::mutex> write(write_mutex_);
  const auto topo = router_.Snapshot();
  if (shard_id >= topo->map.num_shards()) {
    return Status::InvalidArgument("no shard " + std::to_string(shard_id) +
                                   " in " + topo->map.ToString());
  }
  if (topo->map.num_shards() >= kMaxShards) {
    return Status::InvalidArgument("shard count already at the maximum " +
                                   std::to_string(kMaxShards));
  }
  const Period range = topo->map.RangeOf(shard_id);
  if (range.start() == range.end()) {
    return Status::InvalidArgument("shard " + std::to_string(shard_id) +
                                   " owns a single instant; cannot split");
  }

  // Split point: the median resident start strictly inside the range, so
  // the two halves carry comparable populations; midpoint when empty.
  std::vector<Instant> sample;
  {
    std::lock_guard<std::mutex> rel_guard(relations_mutex_);
    for (const auto& [name, rel_state] : relations_) {
      for (const Tuple& t : *rel_state->relation) {
        if (t.start() > range.start() && t.start() <= range.end()) {
          sample.push_back(t.start());
        }
      }
    }
  }
  Instant split;
  if (!sample.empty()) {
    const size_t mid = sample.size() / 2;
    std::nth_element(sample.begin(), sample.begin() + mid, sample.end());
    split = sample[mid];
  } else {
    split = range.start() + (range.end() - range.start() + 1) / 2;
  }

  std::vector<Instant> starts = topo->map.starts();
  starts.insert(starts.begin() + static_cast<ptrdiff_t>(shard_id) + 1, split);
  TAGG_ASSIGN_OR_RETURN(ShardMap map, ShardMap::FromStarts(std::move(starts)));

  // Only the split shard is rebuilt (as two); every sibling state is
  // carried over by pointer — the surgical half of "live rebalance".
  auto next = std::make_shared<Topology>();
  next->version = topo->version + 1;
  next->map = std::move(map);
  next->shards = topo->shards;
  TAGG_ASSIGN_OR_RETURN(std::shared_ptr<ShardState> low, MakeShardState());
  TAGG_ASSIGN_OR_RETURN(std::shared_ptr<ShardState> high, MakeShardState());
  TAGG_RETURN_IF_ERROR(ReplayRange(next->map.RangeOf(shard_id), *low));
  TAGG_RETURN_IF_ERROR(ReplayRange(next->map.RangeOf(shard_id + 1), *high));
  next->shards[shard_id] = std::move(low);
  next->shards.insert(
      next->shards.begin() + static_cast<ptrdiff_t>(shard_id) + 1,
      std::move(high));

  router_.Publish(next);
  UpdateShardGauges(*next);
  rebalances_.fetch_add(1, std::memory_order_relaxed);
  RebalanceTotal().Increment();
  return Status::OK();
}

std::vector<LiveIndexKey> ShardedLiveService::Keys() const {
  std::lock_guard<std::mutex> write(write_mutex_);
  std::vector<LiveIndexKey> keys;
  keys.reserve(registrations_.size());
  for (const Registration& r : registrations_) {
    keys.push_back(LiveIndexKey{r.relation, r.aggregate, r.attribute});
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

ShardedStats ShardedLiveService::Stats() const {
  const auto topo = router_.Snapshot();
  ShardedStats stats;
  stats.topology_version = topo->version;
  stats.num_shards = topo->map.num_shards();
  {
    std::lock_guard<std::mutex> rel_guard(relations_mutex_);
    for (const auto& [name, rel_state] : relations_) {
      stats.logical_tuples +=
          rel_state->absorbed.load(std::memory_order_relaxed);
    }
  }
  stats.scatter_queries = scatter_queries_.load(std::memory_order_relaxed);
  stats.rebalances = rebalances_.load(std::memory_order_relaxed);
  stats.shards.reserve(topo->map.num_shards());
  for (size_t i = 0; i < topo->map.num_shards(); ++i) {
    ShardInfo info;
    info.id = i;
    info.range = topo->map.RangeOf(i);
    info.service = topo->shards[i]->service.Stats();
    info.tuples = ShardFragmentCount(info.service);
    stats.shards.push_back(std::move(info));
  }
  UpdateShardGauges(*topo);
  return stats;
}

Result<std::shared_ptr<ShardState>> ShardedLiveService::MakeShardState()
    const {
  auto state = std::make_shared<ShardState>();
  {
    std::lock_guard<std::mutex> rel_guard(relations_mutex_);
    for (const auto& [name, rel_state] : relations_) {
      auto clone = std::make_shared<Relation>(rel_state->relation->schema(),
                                              rel_state->relation->name());
      TAGG_RETURN_IF_ERROR(state->catalog.Register(std::move(clone)));
    }
  }
  for (const Registration& reg : registrations_) {
    TAGG_RETURN_IF_ERROR(state->service.RegisterIndex(
        state->catalog, reg.relation, reg.aggregate, reg.attribute_name));
  }
  return state;
}

Status ShardedLiveService::ReplayRange(const Period& range,
                                       ShardState& state) const {
  std::vector<std::pair<std::string, std::shared_ptr<Relation>>> sources;
  {
    std::lock_guard<std::mutex> rel_guard(relations_mutex_);
    sources.reserve(relations_.size());
    for (const auto& [name, rel_state] : relations_) {
      sources.emplace_back(name, rel_state->relation);
    }
  }
  for (const auto& [name, relation] : sources) {
    std::vector<Tuple> clipped;
    for (const Tuple& tuple : *relation) {
      if (!range.Overlaps(tuple.valid())) continue;
      auto overlap = range.Intersect(tuple.valid());
      if (!overlap.ok()) continue;  // unreachable after the Overlaps check
      clipped.emplace_back(tuple.values(), overlap.value());
    }
    if (clipped.empty()) continue;
    const size_t count = clipped.size();
    TAGG_RETURN_IF_ERROR(state.service.IngestBatch(name, std::move(clipped)));
    RebalanceTuplesTotal().Increment(count);
  }
  // One publish so the rebuilt shard appears fully loaded the instant the
  // topology referencing it is stored.
  return state.service.Flush();
}

Status ShardedLiveService::RebuildAll(ShardMap map) {
  auto next = std::make_shared<Topology>();
  next->version = router_.Snapshot()->version + 1;
  next->map = std::move(map);
  next->shards.reserve(next->map.num_shards());
  for (size_t i = 0; i < next->map.num_shards(); ++i) {
    TAGG_ASSIGN_OR_RETURN(std::shared_ptr<ShardState> state,
                          MakeShardState());
    TAGG_RETURN_IF_ERROR(ReplayRange(next->map.RangeOf(i), *state));
    next->shards.push_back(std::move(state));
  }
  {
    std::lock_guard<std::mutex> rel_guard(relations_mutex_);
    for (const auto& [name, rel_state] : relations_) {
      rel_state->absorbed.store(rel_state->relation->size(),
                                std::memory_order_relaxed);
    }
  }
  router_.Publish(next);
  UpdateShardGauges(*next);
  return Status::OK();
}

ShardMap ShardedLiveService::DataQuantileMap(size_t shards) const {
  std::vector<Instant> sample;
  {
    std::lock_guard<std::mutex> rel_guard(relations_mutex_);
    for (const auto& [name, rel_state] : relations_) {
      for (const Tuple& tuple : *rel_state->relation) {
        sample.push_back(std::max(tuple.start(), kOrigin));
      }
    }
  }
  // Too little data to cut meaningfully: fall back to uniform boundaries.
  if (sample.size() < shards * 2) {
    auto uniform = ShardMap::MakeUniform(shards, options_.hot_window);
    return uniform.ok() ? std::move(uniform).value() : ShardMap();
  }
  std::sort(sample.begin(), sample.end());
  std::vector<Instant> starts{kOrigin};
  for (size_t i = 1; i < shards; ++i) {
    const Instant candidate = sample[i * sample.size() / shards];
    if (candidate > starts.back() && candidate <= kForever) {
      starts.push_back(candidate);
    }
  }
  auto map = ShardMap::FromStarts(std::move(starts));
  return map.ok() ? std::move(map).value() : ShardMap();
}

void ShardedLiveService::UpdateShardGauges(const Topology& topo) const {
  ShardCountGauge().Set(static_cast<double>(topo.map.num_shards()));
  TopologyVersionGauge().Set(static_cast<double>(topo.version));
  // Per-shard resident-fragment gauges; the registry is name-keyed (no
  // label support), so the shard id is embedded in the metric name.
  for (size_t i = 0; i < topo.map.num_shards(); ++i) {
    obs::MetricsRegistry::Global()
        .GetGauge("tagg_shard_" + std::to_string(i) + "_tuples",
                  "Tuple fragments resident in this shard")
        .Set(static_cast<double>(
            ShardFragmentCount(topo.shards[i]->service.Stats())));
  }
  // A shrink leaves higher-numbered gauges behind; zero them so the
  // exposition does not report ghost shards.
  size_t previous = max_shards_published_.load(std::memory_order_relaxed);
  while (previous < topo.map.num_shards() &&
         !max_shards_published_.compare_exchange_weak(
             previous, topo.map.num_shards(), std::memory_order_relaxed)) {
  }
  for (size_t i = topo.map.num_shards();
       i < max_shards_published_.load(std::memory_order_relaxed); ++i) {
    obs::MetricsRegistry::Global()
        .GetGauge("tagg_shard_" + std::to_string(i) + "_tuples",
                  "Tuple fragments resident in this shard")
        .Set(0.0);
  }
}

}  // namespace shard
}  // namespace tagg
