// ShardMap: the range partitioning of the time-line behind the shard
// router.
//
// The timeline [kOrigin, kForever] is cut into N contiguous, disjoint
// ranges; shard i owns [starts[i], starts[i+1] - 1] (the last shard runs
// to kForever).  Range partitioning — rather than hashing — is what makes
// sharded temporal aggregation *exact*: a tuple straddling a boundary is
// clipped into per-shard fragments whose union covers exactly the same
// instants, so every instant's covering multiset (the input of all five
// monoid aggregates) is preserved shard-locally, and per-shard series are
// time-disjoint and merge by concatenation + seam coalescing with no
// cross-shard state combine.  PartitionScheme leaves the door open for a
// key-hash scheme later (which would need state-level merge — see
// docs/SHARDING.md).
//
// The map is immutable after construction; topology changes build a new
// map and publish it atomically (shard/sharded_service.h).

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "temporal/period.h"
#include "util/result.h"

namespace tagg {
namespace shard {

/// How tuples are assigned to shards.  Only range partitioning exists
/// today; the enum is the hook for a future key-hash scheme.
enum class PartitionScheme : uint8_t { kRange };

/// One shard's clip of a period (the output of SplitOver).
struct ShardSlice {
  size_t shard = 0;
  Period range;
};

class ShardMap {
 public:
  /// The trivial single-shard map owning the whole time-line.
  ShardMap();

  /// Builds a map from range start instants.  `starts` must begin with
  /// kOrigin and be strictly increasing; starts.size() becomes the shard
  /// count.
  static Result<ShardMap> FromStarts(std::vector<Instant> starts);

  /// Splits `hot` into `shards` near-equal ranges: shard 0 additionally
  /// owns everything before the hot window and the last shard everything
  /// after it.  Boundaries that would collide (hot window narrower than
  /// the shard count) are dropped, so the result may hold fewer shards.
  static Result<ShardMap> MakeUniform(size_t shards, const Period& hot);

  size_t num_shards() const { return starts_.size(); }
  const std::vector<Instant>& starts() const { return starts_; }

  /// The shard whose range contains `t` (total: every in-line instant is
  /// owned by exactly one shard).
  size_t OwnerOf(Instant t) const;

  /// Shard i's owned range.
  Period RangeOf(size_t shard) const;

  /// The ascending list of (shard, clipped sub-period) slices covering
  /// `p` exactly: one slice per overlapped shard, slices meet exactly at
  /// the boundaries.  A period inside one shard yields a single slice.
  std::vector<ShardSlice> SplitOver(const Period& p) const;

  /// "3 shards: [0, 9] [10, 99] [100, forever]".
  std::string ToString() const;

  bool operator==(const ShardMap& other) const {
    return starts_ == other.starts_;
  }

 private:
  explicit ShardMap(std::vector<Instant> starts)
      : starts_(std::move(starts)) {}

  std::vector<Instant> starts_;  // starts_[0] == kOrigin, ascending
};

}  // namespace shard
}  // namespace tagg
