// Hardened parsing for count-valued configuration (environment variables
// and flags): worker pools, shard counts, queue sizes.
//
// The raw pattern `(size_t)strtol(getenv(...))` silently turns "-4" into
// 18446744073709551612 workers and "1e9" into 1, so every count knob goes
// through ClampCount/ResolveCountEnv instead: garbage falls back to the
// documented default, out-of-range values clamp to [1, max], and either
// repair logs one warning naming the knob so the operator learns the
// value was not taken at face value.

#pragma once

#include <cstddef>

namespace tagg {

/// Clamps a parsed count into [1, max_value].  `value <= 0` is treated as
/// "unusable" and yields `fallback` (itself clamped); values above
/// `max_value` clamp down.  Any repair logs a warning naming `what`.
size_t ClampCount(const char* what, long long value, size_t fallback,
                  size_t max_value);

/// Resolves a count from the environment variable `name`: unset yields
/// `fallback` silently; a set but non-numeric / trailing-garbage /
/// overflowed value logs a warning and yields `fallback`; a numeric value
/// is clamped through ClampCount.
size_t ResolveCountEnv(const char* name, size_t fallback, size_t max_value);

}  // namespace tagg
