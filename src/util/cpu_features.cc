#include "util/cpu_features.h"

#include <atomic>
#include <cstdlib>

namespace tagg {
namespace {

// -1 = no override; otherwise a SimdLevel cast to int.
std::atomic<int> g_override{-1};

bool ScalarForcedByEnv() {
  static const bool forced = [] {
    const char* env = std::getenv("TAGG_NO_AVX2");
    return env != nullptr && env[0] != '\0';
  }();
  return forced;
}

}  // namespace

std::string_view SimdLevelToString(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "?";
}

SimdLevel DetectSimdLevel() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

SimdLevel ActiveSimdLevel() {
  static const SimdLevel hardware = DetectSimdLevel();
  const int override = g_override.load(std::memory_order_relaxed);
  if (override >= 0) {
    const auto requested = static_cast<SimdLevel>(override);
    return requested <= hardware ? requested : hardware;
  }
  if (ScalarForcedByEnv()) return SimdLevel::kScalar;
  return hardware;
}

SimdLevelOverride::SimdLevelOverride(SimdLevel level)
    : previous_(g_override.exchange(static_cast<int>(level),
                                    std::memory_order_relaxed)) {}

SimdLevelOverride::~SimdLevelOverride() {
  g_override.store(previous_, std::memory_order_relaxed);
}

}  // namespace tagg
