// Status: lightweight error propagation without exceptions.
//
// Follows the RocksDB/Arrow idiom: functions that can fail return a Status
// (or a Result<T>, see util/result.h) instead of throwing.  A Status is cheap
// to copy when OK (no allocation) and carries a code plus a human-readable
// message otherwise.

#pragma once

#include <memory>
#include <string>
#include <string_view>

namespace tagg {

/// Error category carried by a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kResourceExhausted = 5,
  kIOError = 6,
  kCorruption = 7,
  kNotSupported = 8,
  kInternal = 9,
};

/// Returns the canonical lowercase name of a status code ("ok", "io error"...).
std::string_view StatusCodeToString(StatusCode code);

/// The result of an operation that may fail.
///
/// An OK status stores nothing and is trivially cheap.  Error statuses store
/// a code and message in a heap cell shared on copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// The error message, empty for OK statuses.
  std::string_view message() const {
    return rep_ ? std::string_view(rep_->message) : std::string_view();
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };

  Status(StatusCode code, std::string msg)
      : rep_(std::make_shared<Rep>(Rep{code, std::move(msg)})) {}

  std::shared_ptr<const Rep> rep_;  // nullptr means OK
};

/// Propagates a non-OK Status to the caller.
#define TAGG_RETURN_IF_ERROR(expr)        \
  do {                                    \
    ::tagg::Status _st = (expr);          \
    if (!_st.ok()) return _st;            \
  } while (0)

}  // namespace tagg
