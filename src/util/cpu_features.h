// Runtime CPU feature detection for the SIMD kernel dispatch.
//
// The build carries no -march flags (the binaries must run on any x86-64
// CI box), so vectorized kernels are compiled per-function with
// __attribute__((target("avx2"))) and selected at runtime.  This module is
// the single source of truth for that decision: kernels ask
// ActiveSimdLevel() once per region and branch to the matching body.
//
// Two overrides exist so both dispatch paths stay testable on any machine:
//   * the TAGG_NO_AVX2 environment variable (any non-empty value) forces
//     the scalar fallback process-wide — CI runs a whole matrix leg under
//     it, and
//   * SimdLevelOverride pins the decision programmatically for the
//     benches' honest scalar-vs-SIMD ablation.

#pragma once

#include <cstdint>
#include <string_view>

namespace tagg {

/// Instruction-set tiers the columnar kernels are compiled for, in
/// ascending order of capability.
enum class SimdLevel : uint8_t {
  kScalar,  // portable C++ body; always available
  kAvx2,    // 256-bit integer/double bodies behind __builtin_cpu_supports
};

std::string_view SimdLevelToString(SimdLevel level);

/// What the hardware supports, ignoring every override.  Uncached.
SimdLevel DetectSimdLevel();

/// The dispatch decision: DetectSimdLevel() clamped by TAGG_NO_AVX2 and by
/// any SimdLevelOverride.  The environment is consulted once and cached;
/// overrides take effect immediately.
SimdLevel ActiveSimdLevel();

/// Scoped override pinning ActiveSimdLevel() to `level` (still clamped to
/// what the hardware supports — requesting kAvx2 on a non-AVX2 box yields
/// kScalar).  Not thread-safe against concurrent overrides; intended for
/// tests and bench ablations, which pin it around a single-threaded setup.
class SimdLevelOverride {
 public:
  explicit SimdLevelOverride(SimdLevel level);
  ~SimdLevelOverride();

  SimdLevelOverride(const SimdLevelOverride&) = delete;
  SimdLevelOverride& operator=(const SimdLevelOverride&) = delete;

 private:
  int previous_;
};

}  // namespace tagg
