#include "util/status.h"

namespace tagg {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kIOError:
      return "io error";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kNotSupported:
      return "not supported";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += rep_->message;
  return out;
}

}  // namespace tagg
