// Result<T>: a value or an error Status, in the style of arrow::Result /
// absl::StatusOr.  Used as the return type of fallible functions that
// produce a value.

#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "util/status.h"

namespace tagg {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent.
template <typename T>
class Result {
 public:
  /// Implicit from a value (the success path).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status (the error path).  Constructing a Result
  /// from an OK status is a programming error and is remapped to kInternal.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; Status::OK() if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// The held value.  Must only be called when ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  /// Moves the value out of an rvalue Result.  Returns by value rather
  /// than T&&: a reference into the dying temporary is a dangling-use
  /// hazard (and provokes a GCC 12 miscompile when the surrounding code
  /// uses "+m,r"-constrained inline asm, as google-benchmark's
  /// DoNotOptimize does).
  T value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

/// Evaluates `expr` (a Result<T>); on error returns the status, otherwise
/// assigns the value to `lhs`.
#define TAGG_ASSIGN_OR_RETURN(lhs, expr)             \
  auto TAGG_CONCAT_(_res_, __LINE__) = (expr);       \
  if (!TAGG_CONCAT_(_res_, __LINE__).ok())           \
    return TAGG_CONCAT_(_res_, __LINE__).status();   \
  lhs = std::move(TAGG_CONCAT_(_res_, __LINE__)).value()

#define TAGG_CONCAT_INNER_(a, b) a##b
#define TAGG_CONCAT_(a, b) TAGG_CONCAT_INNER_(a, b)

}  // namespace tagg
