#include "util/env.h"

#include <cerrno>
#include <cstdlib>

#include "util/logging.h"

namespace tagg {

size_t ClampCount(const char* what, long long value, size_t fallback,
                  size_t max_value) {
  if (max_value == 0) max_value = 1;
  if (fallback < 1) fallback = 1;
  if (fallback > max_value) fallback = max_value;
  if (value <= 0) {
    TAGG_LOG(Warn) << what << "=" << value
                   << " is not a positive count; using " << fallback;
    return fallback;
  }
  const unsigned long long unsigned_value =
      static_cast<unsigned long long>(value);
  if (unsigned_value > static_cast<unsigned long long>(max_value)) {
    TAGG_LOG(Warn) << what << "=" << value << " exceeds the maximum "
                   << max_value << "; clamping";
    return max_value;
  }
  return static_cast<size_t>(value);
}

size_t ResolveCountEnv(const char* name, size_t fallback, size_t max_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') {
    return ClampCount(name, static_cast<long long>(fallback), fallback,
                      max_value);
  }
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || errno == ERANGE) {
    TAGG_LOG(Warn) << name << "='" << raw
                   << "' is not an integer; using " << fallback;
    return ClampCount(name, static_cast<long long>(fallback), fallback,
                      max_value);
  }
  return ClampCount(name, value, fallback, max_value);
}

}  // namespace tagg
