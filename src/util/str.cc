#include "util/str.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace tagg {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace tagg
