#include "util/random.h"

namespace tagg {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = (~uint64_t{0} / span) * span;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % span);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace tagg
