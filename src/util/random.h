// Deterministic, seedable random number generation for workload synthesis
// and tests.  Uses xoshiro256** — fast, high quality, and reproducible
// across platforms (unlike std::uniform_int_distribution, whose output is
// implementation-defined).

#pragma once

#include <cstddef>
#include <cstdint>

namespace tagg {

/// xoshiro256** PRNG with splitmix64 seeding.
///
/// All workload generation in the benchmark suite goes through this class so
/// that a (seed, parameters) pair always produces the same relation.
class Rng {
 public:
  /// Seeds the generator; every distinct seed yields an independent stream.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in the closed range [lo, hi].  Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffles `n` elements addressed through `swap(i, j)`.
  template <typename SwapFn>
  void Shuffle(size_t n, SwapFn swap) {
    if (n < 2) return;
    for (size_t i = n - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(0, static_cast<int64_t>(i)));
      if (j != i) swap(i, j);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace tagg
