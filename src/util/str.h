// Small string helpers shared across modules.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tagg {

/// Lowercases ASCII characters; leaves other bytes untouched.
std::string ToLower(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Splits on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace tagg
