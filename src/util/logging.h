// Minimal leveled logging plus CHECK macros for internal invariants.
//
// Library code reports recoverable failures through Status; CHECKs are
// reserved for conditions that indicate a bug in this library itself.

#pragma once

#include <sstream>
#include <string>

namespace tagg {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the minimum level emitted to stderr (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 protected:
  /// Writes the accumulated line to stderr (once).  Called by the
  /// destructor, and by FatalLogMessage before aborting — a derived
  /// destructor runs before the base one, so the fatal path must flush
  /// explicitly or the message would be lost.
  void Emit();

 private:
  LogLevel level_;
  std::ostringstream stream_;
  bool emitted_ = false;
};

/// LogMessage that aborts the process after emitting.
class FatalLogMessage : public LogMessage {
 public:
  FatalLogMessage(const char* file, int line)
      : LogMessage(LogLevel::kError, file, line) {}
  [[noreturn]] ~FatalLogMessage();
};

}  // namespace internal

#define TAGG_LOG(level)                                             \
  ::tagg::internal::LogMessage(::tagg::LogLevel::k##level, __FILE__, \
                               __LINE__)

#define TAGG_CHECK(cond)                                   \
  if (!(cond))                                             \
  ::tagg::internal::FatalLogMessage(__FILE__, __LINE__)    \
      << "Check failed: " #cond " "

#define TAGG_DCHECK(cond) TAGG_CHECK(cond)

}  // namespace tagg
