// Thin RAII socket layer over POSIX TCP: owned fds, loopback listeners,
// non-blocking I/O helpers, and the FaultInjector seams that let the
// error-path sweeps exercise accept/read/write failures on demand.
//
// Instrumented sites (tests arm testing::FaultInjector):
//   net.accept   Acceptor::Accept
//   net.read     ReadSome
//   net.write    WriteSome
//
// All helpers return Status/Result instead of errno: EAGAIN/EWOULDBLOCK
// surface as the dedicated IoOutcome::kWouldBlock so edge-triggered
// callers can distinguish "drained" from "failed".

#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "util/result.h"

namespace tagg {
namespace net {

/// Owns one file descriptor; closes it on destruction.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() { return std::exchange(fd_, -1); }
  void Reset();

 private:
  int fd_ = -1;
};

/// Puts `fd` into non-blocking mode.
Status SetNonBlocking(int fd);
/// Disables Nagle batching (request/response traffic wants low latency).
Status SetNoDelay(int fd);

/// Outcome of one non-blocking read/write attempt.
enum class IoOutcome : uint8_t {
  kOk,          // `n` bytes transferred (n > 0)
  kWouldBlock,  // EAGAIN: the socket is drained / the buffer is full
  kClosed,      // read: orderly peer shutdown (n == 0)
  kError,       // hard error (or an injected fault); close the connection
};

struct IoResult {
  IoOutcome outcome = IoOutcome::kError;
  size_t n = 0;
  Status status;  // non-OK only for kError
};

/// One recv() into `buf`; retries EINTR.  Fault seam "net.read".
IoResult ReadSome(int fd, char* buf, size_t len);
/// One send() of `data`; retries EINTR, suppresses SIGPIPE.  Fault seam
/// "net.write".
IoResult WriteSome(int fd, const char* data, size_t len);

/// A listening TCP socket on 127.0.0.1.  Port 0 binds an ephemeral port;
/// port() reports the actual one.
class Acceptor {
 public:
  /// Opens, binds (SO_REUSEADDR), and listens; the listener is
  /// non-blocking so Accept can be polled.
  static Result<Acceptor> Listen(uint16_t port, int backlog = 128);

  /// Accepts one pending connection as a non-blocking fd, or
  /// kWouldBlock-like NotFound when none is pending.  Fault seam
  /// "net.accept" (an injected fault reports IOError with no fd leaked).
  Result<UniqueFd> Accept();

  int fd() const { return fd_.get(); }
  uint16_t port() const { return port_; }

  Acceptor(Acceptor&&) = default;
  Acceptor& operator=(Acceptor&&) = default;

 private:
  Acceptor(UniqueFd fd, uint16_t port) : fd_(std::move(fd)), port_(port) {}

  UniqueFd fd_;
  uint16_t port_ = 0;
};

/// Blocking client connect to 127.0.0.1:port (used by the client library,
/// tests, and the load generator; the server side never blocks).
Result<UniqueFd> ConnectLoopback(uint16_t port);

}  // namespace net
}  // namespace tagg
