#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include "testing/fault_injector.h"

namespace tagg {
namespace net {

namespace {

Status ErrnoStatus(const char* what) {
  return Status::IOError(std::string(what) + ": " + strerror(errno));
}

}  // namespace

void UniqueFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::OK();
}

Status SetNoDelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return ErrnoStatus("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

IoResult ReadSome(int fd, char* buf, size_t len) {
  if (Status st = testing::MaybeInjectFault("net.read"); !st.ok()) {
    return {IoOutcome::kError, 0, std::move(st)};
  }
  for (;;) {
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n > 0) return {IoOutcome::kOk, static_cast<size_t>(n), Status::OK()};
    if (n == 0) return {IoOutcome::kClosed, 0, Status::OK()};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoOutcome::kWouldBlock, 0, Status::OK()};
    }
    return {IoOutcome::kError, 0, ErrnoStatus("recv")};
  }
}

IoResult WriteSome(int fd, const char* data, size_t len) {
  if (Status st = testing::MaybeInjectFault("net.write"); !st.ok()) {
    return {IoOutcome::kError, 0, std::move(st)};
  }
  for (;;) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n >= 0) return {IoOutcome::kOk, static_cast<size_t>(n), Status::OK()};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoOutcome::kWouldBlock, 0, Status::OK()};
    }
    return {IoOutcome::kError, 0, ErrnoStatus("send")};
  }
}

Result<Acceptor> Acceptor::Listen(uint16_t port, int backlog) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return ErrnoStatus("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return ErrnoStatus("bind");
  }
  if (::listen(fd.get(), backlog) < 0) return ErrnoStatus("listen");
  socklen_t addrlen = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &addrlen) <
      0) {
    return ErrnoStatus("getsockname");
  }
  TAGG_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  return Acceptor(std::move(fd), ntohs(addr.sin_port));
}

Result<UniqueFd> Acceptor::Accept() {
  for (;;) {
    const int conn =
        ::accept4(fd_.get(), nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (conn >= 0) {
      UniqueFd owned(conn);
      // The seam fires after the kernel handed us the fd so an injected
      // fault exercises the "accepted but unusable" path; UniqueFd closes
      // it, proving no leak.
      if (Status st = testing::MaybeInjectFault("net.accept"); !st.ok()) {
        return st;
      }
      // Responses are small frames written as they complete; without
      // TCP_NODELAY, Nagle holds them for the peer's delayed ACK (~40ms
      // stalls under pipelining).  Best-effort: a failure is not fatal.
      (void)SetNoDelay(owned.get());
      return owned;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::NotFound("no pending connection");
    }
    return ErrnoStatus("accept");
  }
}

Result<UniqueFd> ConnectLoopback(uint16_t port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("connect");
  }
  TAGG_RETURN_IF_ERROR(SetNoDelay(fd.get()));
  return fd;
}

}  // namespace net
}  // namespace tagg
