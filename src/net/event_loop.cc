#include "net/event_loop.h"

#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>

#include "obs/metrics.h"
#include "util/logging.h"

namespace tagg {
namespace net {

namespace {

constexpr size_t kReadChunk = 16 * 1024;
constexpr int kEpollWaitMillis = 100;
constexpr auto kIdleSweepInterval = std::chrono::milliseconds(250);

obs::Counter& ConnectionsTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_net_connections_total", "Client connections accepted");
  return c;
}

obs::Gauge& ConnectionsActive() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "tagg_net_connections_active", "Client connections currently open");
  return g;
}

obs::Counter& BytesReadTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_net_bytes_read_total", "Bytes read from client sockets");
  return c;
}

obs::Counter& BytesWrittenTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_net_bytes_written_total", "Bytes written to client sockets");
  return c;
}

obs::Counter& ProtocolErrorsTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_net_protocol_errors_total",
      "Connections closed for malformed frames or oversized lines");
  return c;
}

obs::Counter& IdleDisconnectsTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_net_idle_disconnects_total",
      "Connections closed by the idle timeout");
  return c;
}

obs::Counter& IoErrorsTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_net_io_errors_total",
      "Connections closed on a read/write error (injected faults included)");
  return c;
}

obs::Counter& ReadPausesTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_net_read_pauses_total",
      "Times a connection's reads were paused for pipeline/outbox "
      "backpressure");
  return c;
}

obs::Counter& TracesSampledTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_net_traces_sampled_total",
      "Requests recorded with a full span breakdown (client-flagged or "
      "1-in-N sampled)");
  return c;
}

obs::Counter& SlowRequestsTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_net_slow_requests_total",
      "Requests whose total exceeded the slow-request threshold");
  return c;
}

/// Deterministic 64-bit mix for server-generated trace ids; the constant
/// is the golden-ratio multiplier (splitmix64 finalizer family).
uint64_t MixTraceId(uint64_t conn_id, uint64_t seq) {
  uint64_t x = conn_id * 0x9E3779B97F4A7C15ull + seq;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  return x | 1;  // never 0, which means "no trace"
}

}  // namespace

std::atomic<uint64_t> EventLoop::next_conn_id_{1};

// ---------------------------------------------------------------------------
// Connection
// ---------------------------------------------------------------------------

void Connection::Respond(uint64_t seq, std::string bytes) {
  Respond(seq, std::move(bytes), obs::RequestTiming{}, nullptr);
}

void Connection::Respond(uint64_t seq, std::string bytes,
                         const obs::RequestTiming& timing,
                         std::unique_ptr<obs::SubSpanBuffer> subs) {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    if (closed_) return;
    if (seq < base_seq_) return;  // already flushed (cannot happen twice)
    const size_t idx = static_cast<size_t>(seq - base_seq_);
    if (idx >= slots_.size()) return;
    Slot& slot = slots_[idx];
    if (slot.filled) return;
    queued_bytes_ += bytes.size();
    slot.timing = timing;
    slot.timing.response_bytes = static_cast<uint32_t>(bytes.size());
    slot.subs = std::move(subs);
    slot.bytes = std::move(bytes);
    slot.filled = true;
  }
  loop_->NotifyResponseReady(id_);
}

bool Connection::SerialEnqueue(std::function<void()> task) {
  std::lock_guard<std::mutex> guard(mutex_);
  pending_tasks_.push_back(std::move(task));
  if (task_running_) return false;
  task_running_ = true;
  return true;
}

std::function<void()> Connection::SerialNext() {
  std::lock_guard<std::mutex> guard(mutex_);
  if (pending_tasks_.empty()) {
    task_running_ = false;
    return {};
  }
  std::function<void()> task = std::move(pending_tasks_.front());
  pending_tasks_.pop_front();
  return task;
}

void Connection::SerialAbort() {
  std::lock_guard<std::mutex> guard(mutex_);
  pending_tasks_.pop_back();
  task_running_ = false;
}

// ---------------------------------------------------------------------------
// EventLoop lifecycle
// ---------------------------------------------------------------------------

EventLoop::EventLoop(EventLoopOptions options, RequestHandler handler)
    : options_(options), handler_(std::move(handler)) {}

EventLoop::~EventLoop() { Stop(); }

Status EventLoop::Start() {
  epoll_fd_ = UniqueFd(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_fd_.valid()) {
    return Status::IOError(std::string("epoll_create1: ") + strerror(errno));
  }
  wake_fd_ = UniqueFd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  if (!wake_fd_.valid()) {
    return Status::IOError(std::string("eventfd: ") + strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // id 0 = the wake eventfd
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev) < 0) {
    return Status::IOError(std::string("epoll_ctl(wake): ") +
                           strerror(errno));
  }
  running_.store(true, std::memory_order_release);
  last_idle_sweep_ = std::chrono::steady_clock::now();
  trace_ring_.reset(new obs::RequestTraceRing(options_.trace_ring_capacity));
  obs::RequestTraceRegistry::Global().Register(trace_ring_.get());
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void EventLoop::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  stop_requested_.store(true, std::memory_order_release);
  Wake();
  if (thread_.joinable()) thread_.join();
  // The loop thread (the ring's only producer) is gone; take the ring
  // out of the global directory before freeing it.
  if (trace_ring_ != nullptr) {
    obs::RequestTraceRegistry::Global().Unregister(trace_ring_.get());
    trace_ring_.reset();
  }
}

void EventLoop::AddConnection(UniqueFd fd) {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    pending_adds_.push_back(std::move(fd));
  }
  Wake();
}

void EventLoop::NotifyResponseReady(uint64_t conn_id) {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    ready_conn_ids_.push_back(conn_id);
  }
  Wake();
}

void EventLoop::Wake() {
  if (!wake_fd_.valid()) return;
  const uint64_t one = 1;
  // A full eventfd counter already guarantees a wakeup; ignore EAGAIN.
  [[maybe_unused]] ssize_t n =
      ::write(wake_fd_.get(), &one, sizeof(one));
}

bool EventLoop::WaitFlushed(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    if (open_slots_.load(std::memory_order_acquire) == 0 &&
        unwritten_bytes_.load(std::memory_order_acquire) == 0) {
      return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    Wake();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

// ---------------------------------------------------------------------------
// Loop body
// ---------------------------------------------------------------------------

void EventLoop::Run() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const int n =
        ::epoll_wait(epoll_fd_.get(), events, kMaxEvents, kEpollWaitMillis);
    if (n < 0 && errno != EINTR) {
      TAGG_LOG(Error) << "epoll_wait failed: " << strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      if (id == 0) {
        uint64_t drained = 0;
        while (::read(wake_fd_.get(), &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      const auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // closed earlier this iteration
      std::shared_ptr<Connection> conn = it->second;
      if (events[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
        ReadAndParse(conn);
      }
      if (conns_.count(id) != 0 && (events[i].events & EPOLLOUT)) {
        FlushWrites(conn);
      }
    }
    ProcessPendingAdds();
    ProcessReadyResponses();
    SweepIdle();
  }
  // Exit: close every connection (pending responses are dropped; the
  // server drains them through WaitFlushed before stopping the loop).
  std::vector<std::shared_ptr<Connection>> remaining;
  remaining.reserve(conns_.size());
  for (auto& [id, conn] : conns_) remaining.push_back(conn);
  for (const auto& conn : remaining) CloseConnection(conn);
}

void EventLoop::ProcessPendingAdds() {
  std::vector<UniqueFd> adds;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    adds.swap(pending_adds_);
  }
  for (UniqueFd& fd : adds) {
    const uint64_t id =
        next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::shared_ptr<Connection>(
        new Connection(std::move(fd), id, this, options_));
    conn->last_activity_ns_.store(obs::TraceNowNs(),
                                  std::memory_order_relaxed);
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, conn->fd_.get(), &ev) <
        0) {
      TAGG_LOG(Error) << "epoll_ctl(add conn): " << strerror(errno);
      continue;  // conn's UniqueFd closes the socket
    }
    conns_.emplace(id, conn);
    {
      std::lock_guard<std::mutex> guard(mutex_);
      conn_registry_.emplace(id, conn);
    }
    num_connections_.fetch_add(1, std::memory_order_relaxed);
    ConnectionsTotal().Increment();
    ConnectionsActive().Add(1);
    // The socket may already hold bytes (client sent with the SYN data or
    // raced the epoll registration) — the edge was consumed before ADD.
    ReadAndParse(conn);
  }
}

void EventLoop::ProcessReadyResponses() {
  std::vector<uint64_t> ready;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    ready.swap(ready_conn_ids_);
  }
  for (const uint64_t id : ready) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    FlushWrites(it->second);
  }
}

void EventLoop::ReadAndParse(const std::shared_ptr<Connection>& conn) {
  if (conn->paused_.load(std::memory_order_relaxed)) {
    return;  // backpressure: leave bytes in the kernel
  }
  conn->last_activity_ns_.store(obs::TraceNowNs(),
                                std::memory_order_relaxed);
  char chunk[kReadChunk];
  for (;;) {
    const IoResult io = ReadSome(conn->fd_.get(), chunk, sizeof(chunk));
    if (io.outcome == IoOutcome::kOk) {
      conn->inbuf_.append(chunk, io.n);
      BytesReadTotal().Increment(io.n);
      // Parse as we go so a pipelining client cannot force the input
      // buffer to hold more than one frame + one read chunk.
      ParseBuffered(conn);
      if (conn->paused_.load(std::memory_order_relaxed) ||
          conns_.count(conn->id()) == 0) {
        return;
      }
      continue;
    }
    if (io.outcome == IoOutcome::kWouldBlock) break;
    if (io.outcome == IoOutcome::kClosed) {
      conn->read_closed_ = true;
      break;
    }
    IoErrorsTotal().Increment();
    CloseConnection(conn);
    return;
  }
  ParseBuffered(conn);
  if (conns_.count(conn->id()) == 0) return;
  if (conn->read_closed_) {
    // Peer half-closed: finish in-flight work, then close on flush.
    conn->close_after_flush_ = true;
    FlushWrites(conn);
  }
}

void EventLoop::ParseBuffered(const std::shared_ptr<Connection>& conn) {
  if (conn->mode() == Connection::Mode::kUnknown) {
    if (conn->inbuf_.empty()) return;
    const uint8_t first = static_cast<uint8_t>(conn->inbuf_[0]);
    conn->mode_.store(first == kRequestMagic || first == kTracedRequestMagic
                          ? Connection::Mode::kBinary
                          : Connection::Mode::kText,
                      std::memory_order_relaxed);
  }
  while (!conn->paused_.load(std::memory_order_relaxed)) {
    if (draining_.load(std::memory_order_acquire)) return;
    // Pipeline cap: pause instead of reserving more slots.
    size_t in_flight;
    {
      std::lock_guard<std::mutex> guard(conn->mutex_);
      in_flight = conn->slots_.size();
    }
    if (in_flight >= options_.max_pipeline) {
      conn->paused_.store(true, std::memory_order_relaxed);
      ReadPausesTotal().Increment();
      return;
    }

    // Trace gate: one branch on the fast path.  A clock is read only
    // when this request could possibly be timed — the client flagged it
    // (0xC6 frame), server-side sampling is on, or the slow-request log
    // wants totals for every request.
    const bool client_traced =
        conn->mode() == Connection::Mode::kBinary && !conn->inbuf_.empty() &&
        static_cast<uint8_t>(conn->inbuf_[0]) == kTracedRequestMagic;
    const bool maybe_timed = client_traced ||
                             options_.trace_sample_every > 0 ||
                             obs::SlowRequestThresholdNs() > 0;
    int64_t parse_ns = 0;
    obs::RequestTiming timing;
    if (maybe_timed) {
      parse_ns = obs::TraceNowNs();
      // The record starts when the bytes arrived (the read that fed the
      // buffer); for requests queued behind others in one read burst the
      // recv stage includes their wait in the input buffer.
      int64_t arrived =
          conn->last_activity_ns_.load(std::memory_order_relaxed);
      if (arrived <= 0 || arrived > parse_ns) arrived = parse_ns;
      timing.start_ns = arrived;
      timing.stage_start_ns[obs::kStageRecv] = 0;
      timing.stage_ns[obs::kStageRecv] = parse_ns - arrived;
    }

    Request req;
    if (conn->mode() == Connection::Mode::kBinary) {
      FrameHeader header;
      std::string_view payload;
      size_t consumed = 0;
      Status error;
      const FrameDecodeState state = TryDecodeFrame(
          conn->inbuf_, /*expect_request=*/true, options_.max_payload_bytes,
          &header, &payload, &consumed, &error);
      if (state == FrameDecodeState::kNeedMore) return;
      if (state == FrameDecodeState::kProtocolError) {
        ProtocolErrorsTotal().Increment();
        // Answer with the error, then close once it is on the wire.
        const uint64_t seq = conn->next_seq_++;
        {
          std::lock_guard<std::mutex> guard(conn->mutex_);
          conn->slots_.emplace_back();
        }
        open_slots_.fetch_add(1, std::memory_order_acq_rel);
        conn->CloseAfterFlush();
        conn->inbuf_.clear();
        conn->Respond(seq, EncodeErrorFrame(error));
        return;
      }
      req.text = false;
      req.opcode = header.opcode_or_status;
      req.payload.assign(payload);
      conn->inbuf_.erase(0, consumed);
      if (timing.timed()) {
        timing.trace_id = header.traced ? header.trace_id : 0;
        timing.request_bytes = static_cast<uint32_t>(consumed);
        timing.opcode = header.opcode_or_status;
        if (header.sampled()) timing.flags |= obs::kTraceRecordSampled;
      }
    } else {
      const size_t nl = conn->inbuf_.find('\n');
      if (nl == std::string::npos) {
        if (conn->inbuf_.size() > options_.max_line_bytes) {
          ProtocolErrorsTotal().Increment();
          const uint64_t seq = conn->next_seq_++;
          {
            std::lock_guard<std::mutex> guard(conn->mutex_);
            conn->slots_.emplace_back();
          }
          open_slots_.fetch_add(1, std::memory_order_acq_rel);
          conn->CloseAfterFlush();
          conn->inbuf_.clear();
          conn->Respond(seq, "-ERR corruption: line exceeds " +
                                 std::to_string(options_.max_line_bytes) +
                                 " bytes\n");
        }
        return;
      }
      std::string line = conn->inbuf_.substr(0, nl);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      conn->inbuf_.erase(0, nl + 1);
      req.text = true;
      req.payload = std::move(line);
      if (timing.timed()) {
        timing.request_bytes = static_cast<uint32_t>(nl + 1);
        timing.flags |= obs::kTraceRecordText;
      }
    }

    req.seq = conn->next_seq_++;
    if (timing.timed()) {
      // Server-side sampling: every Nth parsed request on this loop.
      if (!timing.sampled() && options_.trace_sample_every > 0 &&
          (trace_counter_++ % options_.trace_sample_every) == 0) {
        timing.flags |= obs::kTraceRecordSampled;
      }
      if (timing.trace_id == 0) {
        timing.trace_id = MixTraceId(conn->id(), req.seq);
      }
      const int64_t decode_end = obs::TraceNowNs();
      timing.stage_start_ns[obs::kStageDecode] = parse_ns - timing.start_ns;
      timing.stage_ns[obs::kStageDecode] = decode_end - parse_ns;
      // The queue-wait stage opens now; the handler closes it when a
      // worker actually starts executing.
      timing.stage_start_ns[obs::kStageQueueWait] =
          decode_end - timing.start_ns;
      req.timing = timing;
    }
    {
      std::lock_guard<std::mutex> guard(conn->mutex_);
      conn->slots_.emplace_back();
    }
    open_slots_.fetch_add(1, std::memory_order_acq_rel);
    handler_(conn, std::move(req));
    if (conns_.count(conn->id()) == 0) return;  // handler closed us
  }
}

void EventLoop::FlushWrites(std::shared_ptr<Connection> conn) {
  conn->last_activity_ns_.store(obs::TraceNowNs(),
                                std::memory_order_relaxed);
  // Move the contiguous completed prefix of the reorder buffer into the
  // loop-thread-only write buffer.
  size_t queued_after = 0;
  {
    std::lock_guard<std::mutex> guard(conn->mutex_);
    size_t released = 0;
    while (!conn->slots_.empty() && conn->slots_.front().filled) {
      Connection::Slot& slot = conn->slots_.front();
      conn->queued_bytes_ -= slot.bytes.size();
      unwritten_bytes_.fetch_add(slot.bytes.size(),
                                 std::memory_order_acq_rel);
      conn->writebuf_.append(slot.bytes);
      conn->wb_enqueued_ += slot.bytes.size();
      if (slot.timing.timed()) {
        // Open the write stage: from entering the write buffer until the
        // last byte of this response has left for the kernel.
        slot.timing.stage_start_ns[obs::kStageWrite] =
            obs::TraceNowNs() - slot.timing.start_ns;
        Connection::PendingCommit commit;
        commit.target_written = conn->wb_enqueued_;
        commit.seq = conn->base_seq_;
        commit.timing = slot.timing;
        commit.subs = std::move(slot.subs);
        conn->pending_commits_.push_back(std::move(commit));
      }
      conn->slots_.pop_front();
      ++conn->base_seq_;
      ++released;
    }
    if (released > 0) {
      open_slots_.fetch_sub(released, std::memory_order_acq_rel);
    }
    queued_after = conn->queued_bytes_ + conn->slots_.size();
  }

  while (!conn->writebuf_.empty()) {
    const IoResult io = WriteSome(conn->fd_.get(), conn->writebuf_.data(),
                                  conn->writebuf_.size());
    if (io.outcome == IoOutcome::kOk) {
      BytesWrittenTotal().Increment(io.n);
      unwritten_bytes_.fetch_sub(io.n, std::memory_order_acq_rel);
      conn->writebuf_.erase(0, io.n);
      conn->wb_written_ += io.n;
      continue;
    }
    if (io.outcome == IoOutcome::kWouldBlock) {
      conn->outbox_bytes_.store(conn->writebuf_.size(),
                                std::memory_order_relaxed);
      CommitWrittenTraces(conn);
      return;  // EPOLLOUT resumes
    }
    IoErrorsTotal().Increment();
    CloseConnection(conn);
    return;
  }
  conn->outbox_bytes_.store(0, std::memory_order_relaxed);
  CommitWrittenTraces(conn);

  if (queued_after == 0) {
    if (conn->close_after_flush_ || conn->read_closed_) {
      CloseConnection(conn);
      return;
    }
    if (conn->paused_.load(std::memory_order_relaxed)) {
      // Backpressure released: resume parsing buffered bytes and any the
      // kernel collected while we were not reading (the edge for those
      // may have fired during the pause).
      conn->paused_.store(false, std::memory_order_relaxed);
      ReadAndParse(conn);
    }
  }
}

void EventLoop::CommitWrittenTraces(const std::shared_ptr<Connection>& conn) {
  if (conn->pending_commits_.empty()) return;
  const int64_t now = obs::TraceNowNs();
  const int64_t slow_ns = obs::SlowRequestThresholdNs();
  while (!conn->pending_commits_.empty() &&
         conn->pending_commits_.front().target_written <=
             conn->wb_written_) {
    Connection::PendingCommit commit =
        std::move(conn->pending_commits_.front());
    conn->pending_commits_.pop_front();
    obs::RequestTiming& t = commit.timing;
    t.stage_ns[obs::kStageWrite] =
        now - t.start_ns - t.stage_start_ns[obs::kStageWrite];
    obs::RequestTraceRecord rec =
        obs::MakeRecord(t, conn->id(), commit.seq, commit.subs.get());
    if (slow_ns > 0 && rec.total_ns >= slow_ns) {
      rec.flags |= obs::kTraceRecordSlow;
      SlowRequestsTotal().Increment();
      TAGG_LOG(Warn) << "slow request ("
                     << rec.total_ns / 1000 << "us >= " << slow_ns / 1000
                     << "us threshold)\n" << obs::RenderRequestTrace(rec);
    }
    if (rec.sampled() || rec.slow()) {
      if (rec.sampled()) TracesSampledTotal().Increment();
      if (trace_ring_ != nullptr) trace_ring_->Record(rec);
    }
  }
}

void EventLoop::SweepIdle() {
  if (options_.idle_timeout.count() <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  if (now - last_idle_sweep_ < kIdleSweepInterval) return;
  last_idle_sweep_ = now;
  const int64_t now_ns = obs::TraceNowNs();
  const int64_t idle_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          options_.idle_timeout)
          .count();
  std::vector<std::shared_ptr<Connection>> idle;
  for (const auto& [id, conn] : conns_) {
    if (now_ns - conn->last_activity_ns_.load(std::memory_order_relaxed) >=
        idle_ns) {
      idle.push_back(conn);
    }
  }
  for (const auto& conn : idle) {
    IdleDisconnectsTotal().Increment();
    CloseConnection(conn);
  }
}

std::vector<ConnectionStatsRow> EventLoop::SnapshotConnections() const {
  std::vector<std::shared_ptr<Connection>> live;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    live.reserve(conn_registry_.size());
    for (const auto& [id, weak] : conn_registry_) {
      if (std::shared_ptr<Connection> conn = weak.lock()) {
        live.push_back(std::move(conn));
      }
    }
  }
  const int64_t now_ns = obs::TraceNowNs();
  std::vector<ConnectionStatsRow> rows;
  rows.reserve(live.size());
  for (const auto& conn : live) {
    ConnectionStatsRow row;
    row.id = conn->id();
    switch (conn->mode()) {
      case Connection::Mode::kBinary:
        row.mode = 'B';
        break;
      case Connection::Mode::kText:
        row.mode = 'T';
        break;
      default:
        row.mode = '?';
    }
    {
      std::lock_guard<std::mutex> guard(conn->mutex_);
      if (conn->closed_) continue;
      row.pipeline_depth = conn->slots_.size();
      row.queued_bytes = conn->queued_bytes_;
    }
    row.outbox_bytes = conn->outbox_bytes_.load(std::memory_order_relaxed);
    row.paused = conn->paused_.load(std::memory_order_relaxed);
    row.rate_tokens =
        conn->rate_limiter_.unlimited() ? -1.0 : conn->rate_limiter_.tokens();
    row.idle_ms =
        (now_ns - conn->last_activity_ns_.load(std::memory_order_relaxed)) /
        1000000;
    if (row.idle_ms < 0) row.idle_ms = 0;
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const ConnectionStatsRow& a, const ConnectionStatsRow& b) {
              return a.id < b.id;
            });
  return rows;
}

void EventLoop::CloseConnection(std::shared_ptr<Connection> conn) {
  if (conns_.erase(conn->id()) == 0) return;  // already closed
  {
    std::lock_guard<std::mutex> guard(mutex_);
    conn_registry_.erase(conn->id());
  }
  size_t dropped_slots = 0;
  size_t dropped_bytes = 0;
  {
    std::lock_guard<std::mutex> guard(conn->mutex_);
    conn->closed_ = true;
    dropped_slots = conn->slots_.size();
    conn->slots_.clear();
    dropped_bytes = conn->writebuf_.size();
    conn->writebuf_.clear();
    conn->queued_bytes_ = 0;
  }
  conn->pending_commits_.clear();
  conn->outbox_bytes_.store(0, std::memory_order_relaxed);
  if (dropped_slots > 0) {
    open_slots_.fetch_sub(dropped_slots, std::memory_order_acq_rel);
  }
  if (dropped_bytes > 0) {
    unwritten_bytes_.fetch_sub(dropped_bytes, std::memory_order_acq_rel);
  }
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, conn->fd_.get(), nullptr);
  conn->fd_.Reset();
  num_connections_.fetch_sub(1, std::memory_order_relaxed);
  ConnectionsActive().Add(-1);
}

}  // namespace net
}  // namespace tagg
