#include "net/wire.h"

#include <cstring>

namespace tagg {
namespace net {

namespace {

Status Truncated(const char* what) {
  return Status::Corruption(std::string("truncated payload reading ") + what);
}

/// Least frame bytes a count of composite items can occupy; used to bound
/// reserve() against hostile count fields before any per-item decode.
constexpr size_t kMinTupleBytes = 2 * 8 + 2;      // start, end, value count
constexpr size_t kMinIntervalBytes = 2 * 8 + 1;   // start, end, value tag

}  // namespace

std::string_view OpcodeToString(Opcode opcode) {
  switch (opcode) {
    case Opcode::kPing: return "ping";
    case Opcode::kInsert: return "insert";
    case Opcode::kInsertBatch: return "insert_batch";
    case Opcode::kFlush: return "flush";
    case Opcode::kAggregateAt: return "aggregate_at";
    case Opcode::kAggregateOver: return "aggregate_over";
    case Opcode::kMetrics: return "metrics";
  }
  return "unknown";
}

bool IsValidOpcode(uint8_t raw) {
  return raw >= static_cast<uint8_t>(Opcode::kPing) &&
         raw <= static_cast<uint8_t>(Opcode::kMetrics);
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void Writer::U16(uint16_t v) {
  out_.push_back(static_cast<char>(v & 0xFF));
  out_.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void Writer::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void Writer::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void Writer::F64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void Writer::Str(std::string_view s) {
  U16(static_cast<uint16_t>(s.size()));
  out_.append(s);
}

void Writer::Value(const tagg::Value& v) {
  U8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      I64(v.AsInt());
      break;
    case ValueType::kDouble:
      F64(v.AsDouble());
      break;
    case ValueType::kString:
      Str(v.AsString());
      break;
  }
}

std::string EncodeRequestFrame(Opcode opcode, std::string_view payload) {
  Writer w;
  w.U8(kRequestMagic);
  w.U8(static_cast<uint8_t>(opcode));
  w.U32(static_cast<uint32_t>(payload.size()));
  w.Raw(payload);
  return w.Take();
}

std::string EncodeTracedRequestFrame(Opcode opcode, uint64_t trace_id,
                                     uint8_t trace_flags,
                                     std::string_view payload) {
  Writer w;
  w.U8(kTracedRequestMagic);
  w.U8(static_cast<uint8_t>(opcode));
  w.U8(trace_flags);
  w.U64(trace_id);
  w.U32(static_cast<uint32_t>(payload.size()));
  w.Raw(payload);
  return w.Take();
}

std::string EncodeResponseFrame(StatusCode code, std::string_view payload) {
  Writer w;
  w.U8(kResponseMagic);
  w.U8(static_cast<uint8_t>(code));
  w.U32(static_cast<uint32_t>(payload.size()));
  w.Raw(payload);
  return w.Take();
}

std::string EncodeErrorFrame(const Status& status) {
  return EncodeResponseFrame(status.code(), status.message());
}

// ---------------------------------------------------------------------------
// Cursor
// ---------------------------------------------------------------------------

Result<std::string_view> Cursor::Bytes(size_t n) {
  if (remaining() < n) return Truncated("bytes");
  std::string_view out = bytes_.substr(pos_, n);
  pos_ += n;
  return out;
}

Result<uint8_t> Cursor::U8() {
  if (remaining() < 1) return Truncated("u8");
  return static_cast<uint8_t>(bytes_[pos_++]);
}

Result<uint16_t> Cursor::U16() {
  TAGG_ASSIGN_OR_RETURN(std::string_view b, Bytes(2));
  return static_cast<uint16_t>(static_cast<uint8_t>(b[0]) |
                               (static_cast<uint8_t>(b[1]) << 8));
}

Result<uint32_t> Cursor::U32() {
  TAGG_ASSIGN_OR_RETURN(std::string_view b, Bytes(4));
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(b[i]);
  return v;
}

Result<uint64_t> Cursor::U64() {
  TAGG_ASSIGN_OR_RETURN(std::string_view b, Bytes(8));
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(b[i]);
  return v;
}

Result<int64_t> Cursor::I64() {
  TAGG_ASSIGN_OR_RETURN(uint64_t v, U64());
  return static_cast<int64_t>(v);
}

Result<double> Cursor::F64() {
  TAGG_ASSIGN_OR_RETURN(uint64_t bits, U64());
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string_view> Cursor::Str() {
  TAGG_ASSIGN_OR_RETURN(uint16_t len, U16());
  return Bytes(len);
}

Result<tagg::Value> Cursor::Value() {
  TAGG_ASSIGN_OR_RETURN(uint8_t tag, U8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return tagg::Value::Null();
    case ValueType::kInt: {
      TAGG_ASSIGN_OR_RETURN(int64_t v, I64());
      return tagg::Value::Int(v);
    }
    case ValueType::kDouble: {
      TAGG_ASSIGN_OR_RETURN(double v, F64());
      return tagg::Value::Double(v);
    }
    case ValueType::kString: {
      TAGG_ASSIGN_OR_RETURN(std::string_view s, Str());
      return tagg::Value::String(std::string(s));
    }
  }
  return Status::Corruption("unknown value type tag " + std::to_string(tag));
}

std::string_view Cursor::Rest() {
  std::string_view out = bytes_.substr(pos_);
  pos_ = bytes_.size();
  return out;
}

Status Cursor::ExpectEnd() const {
  if (remaining() != 0) {
    return Status::Corruption(std::to_string(remaining()) +
                              " trailing byte(s) after payload");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Frame decoding
// ---------------------------------------------------------------------------

FrameDecodeState TryDecodeFrame(std::string_view buffer, bool expect_request,
                                uint32_t max_payload, FrameHeader* header,
                                std::string_view* payload, size_t* consumed,
                                Status* error) {
  if (buffer.empty()) return FrameDecodeState::kNeedMore;
  const uint8_t magic = static_cast<uint8_t>(buffer[0]);
  const bool traced = expect_request && magic == kTracedRequestMagic;
  const bool plain_ok =
      magic == (expect_request ? kRequestMagic : kResponseMagic);
  if (!plain_ok && !traced) {
    *error = Status::Corruption("bad frame magic 0x" + std::to_string(magic));
    return FrameDecodeState::kProtocolError;
  }
  const size_t header_bytes =
      traced ? kTracedFrameHeaderBytes : kFrameHeaderBytes;
  if (buffer.size() < header_bytes) return FrameDecodeState::kNeedMore;
  header->magic = magic;
  header->opcode_or_status = static_cast<uint8_t>(buffer[1]);
  header->traced = traced;
  header->trace_flags = 0;
  header->trace_id = 0;
  size_t len_at = 2;
  if (traced) {
    header->trace_flags = static_cast<uint8_t>(buffer[2]);
    uint64_t id = 0;
    for (int i = 10; i >= 3; --i) {
      id = (id << 8) | static_cast<uint8_t>(buffer[i]);
    }
    header->trace_id = id;
    len_at = 11;
  }
  uint32_t len = 0;
  for (size_t i = len_at + 3; i + 1 > len_at; --i) {
    len = (len << 8) | static_cast<uint8_t>(buffer[i]);
  }
  header->payload_len = len;
  if (expect_request && !IsValidOpcode(header->opcode_or_status)) {
    *error = Status::Corruption("unknown opcode " +
                                std::to_string(header->opcode_or_status));
    return FrameDecodeState::kProtocolError;
  }
  if (len > max_payload) {
    *error = Status::Corruption("frame payload " + std::to_string(len) +
                                " exceeds limit " +
                                std::to_string(max_payload));
    return FrameDecodeState::kProtocolError;
  }
  if (buffer.size() - header_bytes < len) {
    return FrameDecodeState::kNeedMore;
  }
  *payload = buffer.substr(header_bytes, len);
  *consumed = header_bytes + len;
  return FrameDecodeState::kFrame;
}

// ---------------------------------------------------------------------------
// Typed payloads
// ---------------------------------------------------------------------------

namespace {

void WriteTuple(Writer& w, const WireTuple& t) {
  w.I64(t.start);
  w.I64(t.end);
  w.U16(static_cast<uint16_t>(t.values.size()));
  for (const tagg::Value& v : t.values) w.Value(v);
}

Result<WireTuple> ReadTuple(Cursor& c) {
  WireTuple t;
  TAGG_ASSIGN_OR_RETURN(t.start, c.I64());
  TAGG_ASSIGN_OR_RETURN(t.end, c.I64());
  TAGG_ASSIGN_OR_RETURN(uint16_t n, c.U16());
  t.values.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    TAGG_ASSIGN_OR_RETURN(tagg::Value v, c.Value());
    t.values.push_back(std::move(v));
  }
  return t;
}

}  // namespace

std::string EncodeInsert(const InsertRequest& req) {
  Writer w;
  w.Str(req.relation);
  WriteTuple(w, req.tuple);
  return w.Take();
}

std::string EncodeInsertBatch(const InsertBatchRequest& req) {
  Writer w;
  w.Str(req.relation);
  w.U32(static_cast<uint32_t>(req.tuples.size()));
  for (const WireTuple& t : req.tuples) WriteTuple(w, t);
  return w.Take();
}

std::string EncodeFlush(const FlushRequest& req) {
  Writer w;
  w.Str(req.relation);
  return w.Take();
}

std::string EncodeAggregateAt(const AggregateAtRequest& req) {
  Writer w;
  w.Str(req.relation);
  w.U8(req.aggregate);
  w.U32(req.attribute);
  w.I64(req.t);
  return w.Take();
}

std::string EncodeAggregateOver(const AggregateOverRequest& req) {
  Writer w;
  w.Str(req.relation);
  w.U8(req.aggregate);
  w.U32(req.attribute);
  w.I64(req.start);
  w.I64(req.end);
  w.U8(req.coalesce ? 1 : 0);
  return w.Take();
}

Result<InsertRequest> DecodeInsert(std::string_view payload) {
  Cursor c(payload);
  InsertRequest req;
  TAGG_ASSIGN_OR_RETURN(std::string_view rel, c.Str());
  req.relation = std::string(rel);
  TAGG_ASSIGN_OR_RETURN(req.tuple, ReadTuple(c));
  TAGG_RETURN_IF_ERROR(c.ExpectEnd());
  return req;
}

Result<InsertBatchRequest> DecodeInsertBatch(std::string_view payload) {
  Cursor c(payload);
  InsertBatchRequest req;
  TAGG_ASSIGN_OR_RETURN(std::string_view rel, c.Str());
  req.relation = std::string(rel);
  TAGG_ASSIGN_OR_RETURN(uint32_t n, c.U32());
  if (static_cast<size_t>(n) * kMinTupleBytes > c.remaining()) {
    return Status::Corruption("batch count " + std::to_string(n) +
                              " exceeds frame size");
  }
  req.tuples.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    TAGG_ASSIGN_OR_RETURN(WireTuple t, ReadTuple(c));
    req.tuples.push_back(std::move(t));
  }
  TAGG_RETURN_IF_ERROR(c.ExpectEnd());
  return req;
}

Result<FlushRequest> DecodeFlush(std::string_view payload) {
  Cursor c(payload);
  FlushRequest req;
  TAGG_ASSIGN_OR_RETURN(std::string_view rel, c.Str());
  req.relation = std::string(rel);
  TAGG_RETURN_IF_ERROR(c.ExpectEnd());
  return req;
}

Result<AggregateAtRequest> DecodeAggregateAt(std::string_view payload) {
  Cursor c(payload);
  AggregateAtRequest req;
  TAGG_ASSIGN_OR_RETURN(std::string_view rel, c.Str());
  req.relation = std::string(rel);
  TAGG_ASSIGN_OR_RETURN(req.aggregate, c.U8());
  TAGG_ASSIGN_OR_RETURN(req.attribute, c.U32());
  TAGG_ASSIGN_OR_RETURN(req.t, c.I64());
  TAGG_RETURN_IF_ERROR(c.ExpectEnd());
  return req;
}

Result<AggregateOverRequest> DecodeAggregateOver(std::string_view payload) {
  Cursor c(payload);
  AggregateOverRequest req;
  TAGG_ASSIGN_OR_RETURN(std::string_view rel, c.Str());
  req.relation = std::string(rel);
  TAGG_ASSIGN_OR_RETURN(req.aggregate, c.U8());
  TAGG_ASSIGN_OR_RETURN(req.attribute, c.U32());
  TAGG_ASSIGN_OR_RETURN(req.start, c.I64());
  TAGG_ASSIGN_OR_RETURN(req.end, c.I64());
  TAGG_ASSIGN_OR_RETURN(uint8_t coalesce, c.U8());
  req.coalesce = coalesce != 0;
  TAGG_RETURN_IF_ERROR(c.ExpectEnd());
  return req;
}

std::string EncodeAggregateAtResponse(const AggregateAtResponse& resp) {
  Writer w;
  w.U64(resp.epoch);
  w.Value(resp.value);
  return w.Take();
}

std::string EncodeAggregateOverResponse(const AggregateOverResponse& resp) {
  Writer w;
  w.U64(resp.epoch);
  w.U32(static_cast<uint32_t>(resp.intervals.size()));
  for (const WireInterval& iv : resp.intervals) {
    w.I64(iv.start);
    w.I64(iv.end);
    w.Value(iv.value);
  }
  return w.Take();
}

Result<AggregateAtResponse> DecodeAggregateAtResponse(
    std::string_view payload) {
  Cursor c(payload);
  AggregateAtResponse resp;
  TAGG_ASSIGN_OR_RETURN(resp.epoch, c.U64());
  TAGG_ASSIGN_OR_RETURN(resp.value, c.Value());
  TAGG_RETURN_IF_ERROR(c.ExpectEnd());
  return resp;
}

Result<AggregateOverResponse> DecodeAggregateOverResponse(
    std::string_view payload) {
  Cursor c(payload);
  AggregateOverResponse resp;
  TAGG_ASSIGN_OR_RETURN(resp.epoch, c.U64());
  TAGG_ASSIGN_OR_RETURN(uint32_t n, c.U32());
  if (static_cast<size_t>(n) * kMinIntervalBytes > c.remaining()) {
    return Status::Corruption("interval count " + std::to_string(n) +
                              " exceeds frame size");
  }
  resp.intervals.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    WireInterval iv;
    TAGG_ASSIGN_OR_RETURN(iv.start, c.I64());
    TAGG_ASSIGN_OR_RETURN(iv.end, c.I64());
    TAGG_ASSIGN_OR_RETURN(iv.value, c.Value());
    resp.intervals.push_back(std::move(iv));
  }
  TAGG_RETURN_IF_ERROR(c.ExpectEnd());
  return resp;
}

}  // namespace net
}  // namespace tagg
