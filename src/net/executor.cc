#include "net/executor.h"

#include "testing/fault_injector.h"

namespace tagg {
namespace net {

BoundedExecutor::BoundedExecutor(size_t num_threads, size_t queue_capacity)
    : capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

BoundedExecutor::~BoundedExecutor() { Drain(); }

Status BoundedExecutor::TrySubmit(std::function<void()> task) {
  TAGG_INJECT_FAULT("net.executor.enqueue");
  {
    std::lock_guard<std::mutex> guard(mutex_);
    if (stopping_) {
      return Status::ResourceExhausted("SERVER_BUSY: executor stopped");
    }
    if (queue_.size() >= capacity_) {
      return Status::ResourceExhausted("SERVER_BUSY: queue full (" +
                                       std::to_string(capacity_) + ")");
    }
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
  return Status::OK();
}

void BoundedExecutor::Drain() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
    queue_idle_.wait(lock,
                     [this] { return queue_.empty() && running_ == 0; });
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

size_t BoundedExecutor::queue_depth() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return queue_.size();
}

void BoundedExecutor::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stopping_ with an empty queue: drain complete for this worker.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();
    {
      std::lock_guard<std::mutex> guard(mutex_);
      --running_;
      if (queue_.empty() && running_ == 0) queue_idle_.notify_all();
    }
  }
}

}  // namespace net
}  // namespace tagg
