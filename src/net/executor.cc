#include "net/executor.h"

#include "obs/metrics.h"
#include "testing/fault_injector.h"

namespace tagg {
namespace net {

namespace {

obs::Gauge& QueueDepthGauge() {
  static obs::Gauge& gauge = obs::MetricsRegistry::Global().GetGauge(
      "tagg_executor_queue_depth",
      "Tasks waiting in the bounded executor queue");
  return gauge;
}

obs::Histogram& QueueWaitHistogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::Global().GetHistogram(
      "tagg_executor_queue_wait_seconds",
      "Time a task spent queued before a worker picked it up");
  return hist;
}

}  // namespace

BoundedExecutor::BoundedExecutor(size_t num_threads, size_t queue_capacity)
    : capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
  // Touch both instruments so they appear in the exposition from the
  // first scrape, not only after the first task.
  QueueDepthGauge().Set(0.0);
  QueueWaitHistogram();
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

BoundedExecutor::~BoundedExecutor() { Drain(); }

Status BoundedExecutor::TrySubmit(std::function<void()> task) {
  TAGG_INJECT_FAULT("net.executor.enqueue");
  {
    std::lock_guard<std::mutex> guard(mutex_);
    if (stopping_) {
      return Status::ResourceExhausted("SERVER_BUSY: executor stopped");
    }
    if (queue_.size() >= capacity_) {
      return Status::ResourceExhausted("SERVER_BUSY: queue full (" +
                                       std::to_string(capacity_) + ")");
    }
    queue_.push_back(QueuedTask{std::move(task),
                                std::chrono::steady_clock::now()});
    QueueDepthGauge().Set(static_cast<double>(queue_.size()));
  }
  work_ready_.notify_one();
  return Status::OK();
}

void BoundedExecutor::Drain() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
    queue_idle_.wait(lock,
                     [this] { return queue_.empty() && running_ == 0; });
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

size_t BoundedExecutor::queue_depth() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return queue_.size();
}

void BoundedExecutor::WorkerLoop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stopping_ with an empty queue: drain complete for this worker.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      QueueDepthGauge().Set(static_cast<double>(queue_.size()));
      ++running_;
    }
    if (obs::Enabled()) {
      const auto waited = std::chrono::steady_clock::now() - task.enqueued;
      QueueWaitHistogram().Observe(
          std::chrono::duration<double>(waited).count());
    }
    task.fn();
    {
      std::lock_guard<std::mutex> guard(mutex_);
      --running_;
      if (queue_.empty() && running_ == 0) queue_idle_.notify_all();
    }
  }
}

}  // namespace net
}  // namespace tagg
