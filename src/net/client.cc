#include "net/client.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>

namespace tagg {
namespace net {

namespace {

Status FromWire(StatusCode code, std::string msg) {
  switch (code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(msg));
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(std::move(msg));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(msg));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(msg));
    case StatusCode::kIOError:
      return Status::IOError(std::move(msg));
    case StatusCode::kCorruption:
      return Status::Corruption(std::move(msg));
    case StatusCode::kNotSupported:
      return Status::NotSupported(std::move(msg));
    case StatusCode::kInternal:
      return Status::Internal(std::move(msg));
  }
  return Status::Internal("unknown wire status code: " + std::move(msg));
}

}  // namespace

Status RawResponse::ToStatus() const {
  return FromWire(code, payload);
}

Result<Client> Client::ConnectTo(uint16_t port) {
  TAGG_ASSIGN_OR_RETURN(UniqueFd fd, ConnectLoopback(port));
  return Client(std::move(fd));
}

Status Client::WriteAll(std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_.get(), bytes.data() + off,
                             bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Client::Send(Opcode opcode, std::string_view payload) {
  return WriteAll(EncodeRequestFrame(opcode, payload));
}

Status Client::SendTraced(Opcode opcode, uint64_t trace_id,
                          uint8_t trace_flags, std::string_view payload) {
  return WriteAll(
      EncodeTracedRequestFrame(opcode, trace_id, trace_flags, payload));
}

Result<RawResponse> Client::Receive() {
  char chunk[16 * 1024];
  for (;;) {
    FrameHeader header;
    std::string_view payload;
    size_t consumed = 0;
    Status error;
    const FrameDecodeState state =
        TryDecodeFrame(rdbuf_, /*expect_request=*/false,
                       kDefaultMaxPayloadBytes, &header, &payload, &consumed,
                       &error);
    if (state == FrameDecodeState::kProtocolError) return error;
    if (state == FrameDecodeState::kFrame) {
      RawResponse resp;
      resp.code = static_cast<StatusCode>(header.opcode_or_status);
      resp.payload.assign(payload);
      rdbuf_.erase(0, consumed);
      return resp;
    }
    const ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
    if (n == 0) {
      return Status::IOError("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + strerror(errno));
    }
    rdbuf_.append(chunk, static_cast<size_t>(n));
  }
}

Result<RawResponse> Client::Call(Opcode opcode, std::string_view payload) {
  TAGG_RETURN_IF_ERROR(Send(opcode, payload));
  return Receive();
}

Result<RawResponse> Client::CallTraced(Opcode opcode, uint64_t trace_id,
                                       uint8_t trace_flags,
                                       std::string_view payload) {
  TAGG_RETURN_IF_ERROR(SendTraced(opcode, trace_id, trace_flags, payload));
  return Receive();
}

Status Client::Ping() {
  TAGG_ASSIGN_OR_RETURN(RawResponse resp, Call(Opcode::kPing, {}));
  return resp.ToStatus();
}

Status Client::Insert(std::string_view relation, const WireTuple& tuple) {
  InsertRequest req;
  req.relation = std::string(relation);
  req.tuple = tuple;
  TAGG_ASSIGN_OR_RETURN(RawResponse resp,
                        Call(Opcode::kInsert, EncodeInsert(req)));
  return resp.ToStatus();
}

Result<uint32_t> Client::InsertBatch(std::string_view relation,
                                     const std::vector<WireTuple>& tuples) {
  InsertBatchRequest req;
  req.relation = std::string(relation);
  req.tuples = tuples;
  TAGG_ASSIGN_OR_RETURN(RawResponse resp,
                        Call(Opcode::kInsertBatch, EncodeInsertBatch(req)));
  TAGG_RETURN_IF_ERROR(resp.ToStatus());
  Cursor c(resp.payload);
  TAGG_ASSIGN_OR_RETURN(uint32_t n, c.U32());
  TAGG_RETURN_IF_ERROR(c.ExpectEnd());
  return n;
}

Status Client::Flush(std::string_view relation) {
  FlushRequest req;
  req.relation = std::string(relation);
  TAGG_ASSIGN_OR_RETURN(RawResponse resp,
                        Call(Opcode::kFlush, EncodeFlush(req)));
  return resp.ToStatus();
}

Result<AggregateAtResponse> Client::AggregateAt(std::string_view relation,
                                                uint8_t aggregate,
                                                uint32_t attribute,
                                                Instant t) {
  AggregateAtRequest req;
  req.relation = std::string(relation);
  req.aggregate = aggregate;
  req.attribute = attribute;
  req.t = t;
  TAGG_ASSIGN_OR_RETURN(RawResponse resp,
                        Call(Opcode::kAggregateAt, EncodeAggregateAt(req)));
  TAGG_RETURN_IF_ERROR(resp.ToStatus());
  return DecodeAggregateAtResponse(resp.payload);
}

Result<AggregateOverResponse> Client::AggregateOver(
    std::string_view relation, uint8_t aggregate, uint32_t attribute,
    Instant start, Instant end, bool coalesce) {
  AggregateOverRequest req;
  req.relation = std::string(relation);
  req.aggregate = aggregate;
  req.attribute = attribute;
  req.start = start;
  req.end = end;
  req.coalesce = coalesce;
  TAGG_ASSIGN_OR_RETURN(
      RawResponse resp,
      Call(Opcode::kAggregateOver, EncodeAggregateOver(req)));
  TAGG_RETURN_IF_ERROR(resp.ToStatus());
  return DecodeAggregateOverResponse(resp.payload);
}

Result<std::string> Client::Metrics() {
  TAGG_ASSIGN_OR_RETURN(RawResponse resp, Call(Opcode::kMetrics, {}));
  TAGG_RETURN_IF_ERROR(resp.ToStatus());
  return std::move(resp.payload);
}

}  // namespace net
}  // namespace tagg
