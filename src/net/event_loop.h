// EventLoop: one edge-triggered epoll thread multiplexing N connections.
//
// The serving layer runs one acceptor thread plus a small fixed set of
// these loops; each accepted socket is handed to one loop round-robin
// and stays there for its lifetime (no cross-loop migration, so all
// per-connection parse state is single-threaded).
//
// Responsibilities of the loop thread:
//   * read until EAGAIN (edge-triggered contract), append to the
//     connection's input buffer, and split it into requests — binary
//     frames or text lines, auto-detected on the first byte;
//   * hand each request to the server's handler (which answers inline or
//     dispatches to the bounded executor);
//   * write queued responses, honoring EPOLLOUT for slow readers;
//   * enforce the per-connection pipeline cap, pausing reads (TCP
//     backpressure) instead of buffering without bound;
//   * close idle connections past the configured timeout.
//
// Pipelining and ordering: a client may send many requests back to back;
// responses must come back in request order even though the executor
// completes them in any order.  Each parsed request reserves a slot in
// the connection's reorder buffer; Connection::Respond fills the slot
// from any thread, and the loop flushes the contiguous completed prefix.
// Effects are ordered too: the serial-dispatch queue on each connection
// guarantees its requests execute one at a time in program order (an
// insert is visible to the query pipelined right behind it), while
// different connections still run in parallel across the pool.
//
// Shutdown: SetDraining() stops parsing new requests (bytes already in
// flight stay queued); after the executor drains, WaitFlushed() lets the
// server wait for every reserved slot to reach the socket before
// RequestStop() closes the connections and exits the thread.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/socket.h"
#include "net/token_bucket.h"
#include "net/wire.h"
#include "obs/request_trace.h"

namespace tagg {
namespace net {

class EventLoop;

/// One parsed request, binary or text.
struct Request {
  uint64_t seq = 0;       // slot index in the connection's reorder buffer
  bool text = false;
  uint8_t opcode = 0;     // binary mode: a validated Opcode
  std::string payload;    // binary payload bytes, or the text line
  /// Stage timing opened by the parser (recv + decode recorded, the
  /// queue-wait stage start stamped).  timing.timed() is false on the
  /// unsampled fast path; timing.sampled() asks the handler for a full
  /// sub-span capture.  Trivially copyable, so Request stays usable in
  /// std::function closures.
  obs::RequestTiming timing;
};

struct EventLoopOptions {
  uint32_t max_payload_bytes = kDefaultMaxPayloadBytes;
  size_t max_line_bytes = kDefaultMaxLineBytes;
  /// Requests parsed but not yet fully answered per connection; reads
  /// pause above this (the bytes back up into the kernel socket buffer).
  size_t max_pipeline = 128;
  /// Queued response bytes per connection above which reads pause.
  size_t outbox_high_watermark = 8u << 20;
  /// 0 disables idle disconnects.
  std::chrono::milliseconds idle_timeout{0};
  /// Per-connection token bucket; rate <= 0 disables limiting.
  double rate_limit_per_sec = 0.0;
  double rate_limit_burst = 0.0;
  /// Server-side trace sampling: record every Nth request per loop in
  /// full (0 = only requests the client flags via a traced frame).
  size_t trace_sample_every = 0;
  /// Capacity of this loop's request-trace ring (rounded up to a power
  /// of two).
  size_t trace_ring_capacity = 256;
};

/// One /statz row: a point-in-time view of a connection's buffers and
/// limiter, readable from any thread.
struct ConnectionStatsRow {
  uint64_t id = 0;
  char mode = '?';            // 'B' binary, 'T' text, '?' undetected
  size_t pipeline_depth = 0;  // reserved-but-unflushed slots
  size_t queued_bytes = 0;    // filled responses waiting for order
  size_t outbox_bytes = 0;    // bytes sitting in the write buffer
  bool paused = false;        // reads paused for backpressure
  double rate_tokens = -1.0;  // token-bucket level; -1 = unlimited
  int64_t idle_ms = 0;        // since the last read or write
};

/// One client session owned by exactly one EventLoop.
class Connection : public std::enable_shared_from_this<Connection> {
 public:
  enum class Mode : uint8_t { kUnknown, kBinary, kText };

  uint64_t id() const { return id_; }
  Mode mode() const { return mode_.load(std::memory_order_relaxed); }

  /// Completes the request with seq `seq`; `bytes` is the fully encoded
  /// response (a binary frame or text lines).  Thread-safe; called by
  /// executor workers and by the loop thread itself.  Responses to a
  /// connection that has since closed are dropped.
  void Respond(uint64_t seq, std::string bytes);

  /// Traced completion: carries the request's finished stage timing and,
  /// for sampled requests, the captured sub-spans.  The loop stamps the
  /// write stage when the response bytes reach the socket and commits
  /// the record to its trace ring.
  void Respond(uint64_t seq, std::string bytes,
               const obs::RequestTiming& timing,
               std::unique_ptr<obs::SubSpanBuffer> subs);

  /// Opaque per-connection protocol state for layered protocols (the
  /// admin plane's HTTP parser).  Loop-thread-only.
  std::shared_ptr<void>& user_state() { return user_state_; }

  /// The loop-thread-only rate limiter for this session.
  TokenBucket& rate_limiter() { return rate_limiter_; }

  /// Asks the loop to close this connection once every reserved slot has
  /// been answered and written (used after fatal protocol errors).
  void CloseAfterFlush() { close_after_flush_ = true; }

  // --- per-connection serial dispatch ---------------------------------
  // A pipelining client's requests must take effect in program order even
  // though they run on a thread pool: at most one of a connection's tasks
  // is on the executor at a time; the rest wait here, bounded by the
  // pipeline cap (reads pause once max_pipeline slots are open).

  /// Appends `task` to this connection's serial queue.  Returns true if
  /// the caller must now submit a runner that drains SerialNext() (no
  /// task was in flight); false if an in-flight runner will pick it up.
  bool SerialEnqueue(std::function<void()> task);

  /// Pops the next queued task, or clears the in-flight flag and returns
  /// an empty function when the queue is dry.
  std::function<void()> SerialNext();

  /// Undoes a SerialEnqueue that returned true when the runner could not
  /// be submitted (executor saturated); the task is discarded.
  void SerialAbort();

 private:
  friend class EventLoop;

  Connection(UniqueFd fd, uint64_t id, EventLoop* loop,
             const EventLoopOptions& options)
      : fd_(std::move(fd)),
        id_(id),
        loop_(loop),
        rate_limiter_(options.rate_limit_per_sec,
                      options.rate_limit_burst > 0
                          ? options.rate_limit_burst
                          : options.rate_limit_per_sec) {}

  UniqueFd fd_;
  const uint64_t id_;
  EventLoop* const loop_;

  // --- loop-thread-only state -----------------------------------------
  // (mode_, paused_, last_activity_ns_, outbox_bytes_ are written only by
  // the loop thread but read by /statz snapshots, hence relaxed atomics.)
  std::atomic<Mode> mode_{Mode::kUnknown};
  std::string inbuf_;
  std::string writebuf_;
  uint64_t next_seq_ = 0;
  std::atomic<bool> paused_{false};  // pipeline/outbox backpressure
  bool read_closed_ = false;         // peer sent EOF
  bool close_after_flush_ = false;
  std::atomic<int64_t> last_activity_ns_{0};
  std::atomic<size_t> outbox_bytes_{0};
  TokenBucket rate_limiter_;
  std::shared_ptr<void> user_state_;
  /// Cumulative response bytes appended to / drained from writebuf_,
  /// the write-completion ledger trace commits key off.
  uint64_t wb_enqueued_ = 0;
  uint64_t wb_written_ = 0;
  /// Traced responses waiting for their bytes to reach the socket.
  struct PendingCommit {
    uint64_t target_written = 0;  // commit once wb_written_ >= this
    uint64_t seq = 0;
    obs::RequestTiming timing;
    std::unique_ptr<obs::SubSpanBuffer> subs;
  };
  std::deque<PendingCommit> pending_commits_;

  // --- cross-thread reorder buffer ------------------------------------
  struct Slot {
    bool filled = false;
    std::string bytes;
    obs::RequestTiming timing;
    std::unique_ptr<obs::SubSpanBuffer> subs;
  };
  std::mutex mutex_;
  std::deque<Slot> slots_;  // slot i answers request base_seq_ + i
  uint64_t base_seq_ = 0;
  size_t queued_bytes_ = 0;  // filled-but-unflushed response bytes
  bool closed_ = false;      // set by the loop at close; drops late Responds

  // Serial dispatch state (also guarded by mutex_).  Invariant: when
  // task_running_ is false the queue is empty.
  std::deque<std::function<void()>> pending_tasks_;
  bool task_running_ = false;
};

/// Called on the loop thread for every parsed request.  The handler must
/// eventually cause Connection::Respond(req.seq, ...) exactly once.
using RequestHandler =
    std::function<void(const std::shared_ptr<Connection>&, Request&&)>;

class EventLoop {
 public:
  EventLoop(EventLoopOptions options, RequestHandler handler);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll/eventfd pair and spawns the loop thread.
  Status Start();

  /// Adopts an accepted socket (thread-safe; called by the acceptor).
  void AddConnection(UniqueFd fd);

  /// Stops parsing new requests; already-parsed ones keep completing.
  void SetDraining() { draining_.store(true, std::memory_order_release); }

  /// True once every reserved slot has been answered and written (or
  /// the timeout passed).  Call after the executor has drained.
  bool WaitFlushed(std::chrono::milliseconds timeout);

  /// Closes every connection and exits the loop thread.  Idempotent.
  void Stop();

  size_t num_connections() const {
    return num_connections_.load(std::memory_order_relaxed);
  }

  /// Point-in-time rows for every live connection on this loop, readable
  /// from any thread (the /statz backing store).
  std::vector<ConnectionStatsRow> SnapshotConnections() const;

  /// This loop's request-trace ring (valid between Start and Stop;
  /// registered with obs::RequestTraceRegistry::Global() for /tracez).
  const obs::RequestTraceRing* trace_ring() const {
    return trace_ring_.get();
  }

 private:
  friend class Connection;

  void Run();
  void ProcessPendingAdds();
  void ProcessReadyResponses();
  void ReadAndParse(const std::shared_ptr<Connection>& conn);
  void ParseBuffered(const std::shared_ptr<Connection>& conn);
  // FlushWrites and CloseConnection take the shared_ptr BY VALUE: callers
  // may pass a reference into conns_, and CloseConnection erases that map
  // node — a reference parameter would dangle mid-call.
  void FlushWrites(std::shared_ptr<Connection> conn);
  /// Stamps the write stage of traced responses whose bytes have fully
  /// reached the socket, applies the slow-request check, and records
  /// them into the trace ring.
  void CommitWrittenTraces(const std::shared_ptr<Connection>& conn);
  void SweepIdle();
  void CloseConnection(std::shared_ptr<Connection> conn);
  /// Queues `conn` for a flush pass and wakes the loop if needed
  /// (called from Connection::Respond on any thread).
  void NotifyResponseReady(uint64_t conn_id);
  void Wake();

  const EventLoopOptions options_;
  const RequestHandler handler_;

  UniqueFd epoll_fd_;
  UniqueFd wake_fd_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> draining_{false};

  std::atomic<size_t> num_connections_{0};
  /// Requests parsed whose response has not yet fully left the process
  /// (reserved slots) — the drain barrier WaitFlushed() polls.
  std::atomic<size_t> open_slots_{0};
  /// Response bytes sitting in write buffers.
  std::atomic<size_t> unwritten_bytes_{0};

  // Loop-thread-only.
  std::unordered_map<uint64_t, std::shared_ptr<Connection>> conns_;
  std::chrono::steady_clock::time_point last_idle_sweep_;
  /// Rolls over per parsed request for 1-in-N server-side sampling.
  uint64_t trace_counter_ = 0;
  /// Single-producer (this loop's thread) ring of completed traces.
  std::unique_ptr<obs::RequestTraceRing> trace_ring_;

  // Cross-thread queues, guarded by mutex_ (mutable: snapshots are
  // logically const reads).
  mutable std::mutex mutex_;
  std::vector<UniqueFd> pending_adds_;
  std::vector<uint64_t> ready_conn_ids_;
  /// Mirror of conns_ for cross-thread /statz snapshots; weak_ptrs so a
  /// snapshot never extends a closing connection's buffers.
  std::unordered_map<uint64_t, std::weak_ptr<Connection>> conn_registry_;

  static std::atomic<uint64_t> next_conn_id_;
};

}  // namespace net
}  // namespace tagg
