// Blocking client for the binary serving protocol.
//
// One Client owns one TCP connection.  The convenience methods
// (Ping/Insert/.../Metrics) are strict request-response; the raw
// Send/Receive pair exposes pipelining for the load generator and the
// serving bench (send `depth` requests, then read `depth` responses).
//
// Not thread-safe: one Client per thread, like a database cursor.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"

namespace tagg {
namespace net {

/// One decoded response: the operation's status code and raw payload
/// (error message when code != kOk, op-specific encoding otherwise).
struct RawResponse {
  StatusCode code = StatusCode::kOk;
  std::string payload;

  /// OK, or a Status rebuilt from the wire code and message.
  Status ToStatus() const;
};

class Client {
 public:
  static Result<Client> ConnectTo(uint16_t port);

  // --- pipelining primitives -------------------------------------------

  /// Writes one request frame (blocking until fully sent).
  Status Send(Opcode opcode, std::string_view payload);
  /// Writes one traced (0xC6) request frame carrying a trace context.
  /// Pass kTraceFlagSampled in `trace_flags` to ask the server to record
  /// the request's span breakdown in its trace ring.
  Status SendTraced(Opcode opcode, uint64_t trace_id, uint8_t trace_flags,
                    std::string_view payload);
  /// Reads one response frame (blocking).
  Result<RawResponse> Receive();
  /// Sends then receives.
  Result<RawResponse> Call(Opcode opcode, std::string_view payload);
  /// SendTraced then Receive.
  Result<RawResponse> CallTraced(Opcode opcode, uint64_t trace_id,
                                 uint8_t trace_flags,
                                 std::string_view payload);

  // --- convenience ops --------------------------------------------------

  Status Ping();
  Status Insert(std::string_view relation, const WireTuple& tuple);
  /// Returns the number of tuples the server ingested.
  Result<uint32_t> InsertBatch(std::string_view relation,
                               const std::vector<WireTuple>& tuples);
  Status Flush(std::string_view relation = {});
  Result<AggregateAtResponse> AggregateAt(std::string_view relation,
                                          uint8_t aggregate,
                                          uint32_t attribute, Instant t);
  Result<AggregateOverResponse> AggregateOver(std::string_view relation,
                                              uint8_t aggregate,
                                              uint32_t attribute,
                                              Instant start, Instant end,
                                              bool coalesce = true);
  /// The server's Prometheus text exposition.
  Result<std::string> Metrics();

  int fd() const { return fd_.get(); }

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

 private:
  explicit Client(UniqueFd fd) : fd_(std::move(fd)) {}

  Status WriteAll(std::string_view bytes);

  UniqueFd fd_;
  std::string rdbuf_;
};

}  // namespace net
}  // namespace tagg
