// Wire protocol for the network serving layer: a length-prefixed binary
// framing plus a line-oriented taggsql text mode, both decoded by pure
// byte-level functions so the codecs can be fuzzed without a socket.
//
// Binary framing (all integers little-endian):
//
//   request:   magic 0xC4 | opcode u8 | payload_len u32 | payload
//   traced:    magic 0xC6 | opcode u8 | trace_flags u8 | trace_id u64
//              | payload_len u32 | payload
//   response:  magic 0xC5 | status u8 | payload_len u32 | payload
//
// A traced request (0xC6) is semantically identical to a plain request
// but carries client-supplied trace context: a 64-bit trace id and a
// flags byte whose bit 0 (kTraceFlagSampled) asks the server to record a
// full per-stage span breakdown for this request.  Old clients keep
// sending 0xC4 frames and old servers reject 0xC6 as a bad magic, so the
// extension is opt-in on both sides; opcode stays at byte [1] in both
// layouts.  Responses are unchanged — the trace id ties server-side
// records to the client's request stream, it is never echoed.
//
// The first byte of a connection selects the mode: 0xC4 or 0xC6 means
// binary, anything else means text (neither is printable ASCII, so a
// taggsql line can never be mistaken for a frame).  `status` carries the
// tagg::StatusCode of the operation; payload is the error message for
// non-OK responses and an opcode-specific encoding otherwise.  A
// SERVER_BUSY rejection is StatusCode::kResourceExhausted with a message
// starting with "SERVER_BUSY"; rate limiting uses "RATE_LIMITED".
//
// Payload primitives: u8/u16/u32/u64/i64 fixed-width little-endian, f64
// as the IEEE-754 bit pattern, strings as u16 length + bytes, and Values
// as a u8 type tag (0 null, 1 int, 2 double, 3 string) + the payload.
//
// Every decoder consumes from a Cursor and fails with a clean Status on
// truncation, trailing garbage, or a length field pointing past the
// frame; decoders never read beyond the input span and never allocate
// proportionally to a hostile length field before checking it against
// the bytes actually present.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "temporal/period.h"
#include "temporal/value.h"
#include "util/result.h"

namespace tagg {
namespace net {

/// First byte of every binary request frame (and the mode-detect byte).
inline constexpr uint8_t kRequestMagic = 0xC4;
/// First byte of every binary response frame.
inline constexpr uint8_t kResponseMagic = 0xC5;
/// First byte of a request frame carrying trace context.
inline constexpr uint8_t kTracedRequestMagic = 0xC6;

/// Frame header: magic + opcode/status + u32 payload length.
inline constexpr size_t kFrameHeaderBytes = 6;
/// Traced request header: magic + opcode + flags u8 + trace_id u64 +
/// u32 payload length.
inline constexpr size_t kTracedFrameHeaderBytes = 15;

/// trace_flags bit 0: the client asks for a sampled (fully recorded)
/// trace of this request.  Other bits are reserved and ignored.
inline constexpr uint8_t kTraceFlagSampled = 0x01;

/// Default ceiling on a frame payload; oversized frames are a protocol
/// error, closing the connection instead of buffering without bound.
inline constexpr uint32_t kDefaultMaxPayloadBytes = 4u << 20;  // 4 MiB

/// Default ceiling on one text-mode line (including the newline).
inline constexpr size_t kDefaultMaxLineBytes = 64u << 10;  // 64 KiB

/// Operations a client can request.  Values are wire-stable.
enum class Opcode : uint8_t {
  kPing = 1,
  kInsert = 2,
  kInsertBatch = 3,
  kFlush = 4,
  kAggregateAt = 5,
  kAggregateOver = 6,
  kMetrics = 7,
};

/// Name for metrics/debug ("ping", "insert", ...); "unknown" otherwise.
std::string_view OpcodeToString(Opcode opcode);
bool IsValidOpcode(uint8_t raw);

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Append-only payload builder.
class Writer {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  /// u16 length + bytes; the caller must keep strings under 64 KiB.
  void Str(std::string_view s);
  /// Raw bytes without a length prefix (e.g. the Metrics text body).
  void Raw(std::string_view s) { out_.append(s); }
  void Value(const tagg::Value& v);

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// A complete request frame: header + payload.
std::string EncodeRequestFrame(Opcode opcode, std::string_view payload);

/// A request frame carrying trace context (0xC6 layout).  Servers predating
/// the extension reject it, so only send after negotiating or when the
/// deployment is known-new.
std::string EncodeTracedRequestFrame(Opcode opcode, uint64_t trace_id,
                                     uint8_t trace_flags,
                                     std::string_view payload);

/// A complete response frame: header + payload.  `code` is the Status
/// code of the operation (kOk for success).
std::string EncodeResponseFrame(StatusCode code, std::string_view payload);

/// Response frame carrying an error status and its message.
std::string EncodeErrorFrame(const Status& status);

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounds-checked consuming view over a payload.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return remaining() == 0; }

  Result<uint8_t> U8();
  Result<uint16_t> U16();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<int64_t> I64();
  Result<double> F64();
  Result<std::string_view> Str();
  Result<tagg::Value> Value();
  /// Everything not yet consumed (used by Metrics-style raw payloads).
  std::string_view Rest();

  /// Error unless every byte was consumed (rejects trailing garbage).
  Status ExpectEnd() const;

 private:
  Result<std::string_view> Bytes(size_t n);

  std::string_view bytes_;
  size_t pos_ = 0;
};

/// One decoded frame header.  `traced`/`trace_flags`/`trace_id` are only
/// meaningful when magic == kTracedRequestMagic.
struct FrameHeader {
  uint8_t magic = 0;
  uint8_t opcode_or_status = 0;
  uint32_t payload_len = 0;
  bool traced = false;
  uint8_t trace_flags = 0;
  uint64_t trace_id = 0;

  bool sampled() const {
    return traced && (trace_flags & kTraceFlagSampled) != 0;
  }
};

/// Outcome of TryDecodeFrame on a byte stream.
enum class FrameDecodeState : uint8_t {
  kNeedMore,   // incomplete header or payload; read more bytes
  kFrame,      // one complete frame decoded
  kProtocolError,
};

/// Attempts to decode one frame at the front of `buffer`.  On kFrame,
/// fills header/payload (payload views into `buffer`) and sets
/// `consumed` to the frame's total size; the caller erases that prefix.
/// On kProtocolError, `error` explains (bad magic, bad opcode for
/// `expect_request`, payload over `max_payload`).  With `expect_request`
/// both the plain (0xC4) and traced (0xC6) layouts are accepted; the
/// trace context lands in the header.
FrameDecodeState TryDecodeFrame(std::string_view buffer, bool expect_request,
                                uint32_t max_payload, FrameHeader* header,
                                std::string_view* payload, size_t* consumed,
                                Status* error);

// ---------------------------------------------------------------------------
// Typed request payloads
// ---------------------------------------------------------------------------

/// One tuple on the wire: validity + attribute values.
struct WireTuple {
  Instant start = kOrigin;
  Instant end = kForever;
  std::vector<tagg::Value> values;
};

struct InsertRequest {
  std::string relation;
  WireTuple tuple;
};

struct InsertBatchRequest {
  std::string relation;
  std::vector<WireTuple> tuples;
};

struct FlushRequest {
  std::string relation;  // empty = every registered relation
};

/// Sentinel for "no attribute" (COUNT(*)) in the u32 attribute field.
inline constexpr uint32_t kWireNoAttribute = 0xFFFFFFFFu;

struct AggregateAtRequest {
  std::string relation;
  uint8_t aggregate = 0;  // AggregateKind value
  uint32_t attribute = kWireNoAttribute;
  Instant t = kOrigin;
};

struct AggregateOverRequest {
  std::string relation;
  uint8_t aggregate = 0;
  uint32_t attribute = kWireNoAttribute;
  Instant start = kOrigin;
  Instant end = kForever;
  bool coalesce = true;
};

std::string EncodeInsert(const InsertRequest& req);
std::string EncodeInsertBatch(const InsertBatchRequest& req);
std::string EncodeFlush(const FlushRequest& req);
std::string EncodeAggregateAt(const AggregateAtRequest& req);
std::string EncodeAggregateOver(const AggregateOverRequest& req);

Result<InsertRequest> DecodeInsert(std::string_view payload);
Result<InsertBatchRequest> DecodeInsertBatch(std::string_view payload);
Result<FlushRequest> DecodeFlush(std::string_view payload);
Result<AggregateAtRequest> DecodeAggregateAt(std::string_view payload);
Result<AggregateOverRequest> DecodeAggregateOver(std::string_view payload);

// ---------------------------------------------------------------------------
// Typed response payloads
// ---------------------------------------------------------------------------

/// AggregateAt response: the epoch the answer was computed at + the value.
struct AggregateAtResponse {
  uint64_t epoch = 0;
  tagg::Value value;
};

/// One constant interval of an AggregateOver response.
struct WireInterval {
  Instant start = kOrigin;
  Instant end = kForever;
  tagg::Value value;
};

struct AggregateOverResponse {
  uint64_t epoch = 0;
  std::vector<WireInterval> intervals;
};

std::string EncodeAggregateAtResponse(const AggregateAtResponse& resp);
std::string EncodeAggregateOverResponse(const AggregateOverResponse& resp);

Result<AggregateAtResponse> DecodeAggregateAtResponse(
    std::string_view payload);
Result<AggregateOverResponse> DecodeAggregateOverResponse(
    std::string_view payload);

}  // namespace net
}  // namespace tagg
