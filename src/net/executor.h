// BoundedExecutor: a fixed thread pool behind an explicitly bounded task
// queue — the server's backpressure point.
//
// TrySubmit never blocks and never buffers beyond the configured queue
// capacity: when the queue is full it fails with kResourceExhausted so
// the event loop can answer SERVER_BUSY immediately instead of letting a
// hot client grow an unbounded backlog.  The fault seam
// "net.executor.enqueue" lets the error-path sweeps force that rejection
// deterministically.
//
// Drain() is the graceful-shutdown half: it stops admissions, waits until
// every queued and running task has finished, then joins the workers.
//
// The executor publishes its queue pressure into the obs registry — the
// `tagg_executor_queue_depth` gauge tracks the instantaneous backlog, and
// `tagg_executor_queue_wait_seconds` observes how long each task sat
// queued before a worker picked it up (the "queue wait" stage of a
// request trace).  The histogram observation is gated on obs::Enabled()
// like every other clock-reading instrument.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace tagg {
namespace net {

class BoundedExecutor {
 public:
  /// Spawns `num_threads` workers (min 1) over a queue holding at most
  /// `queue_capacity` pending tasks (min 1).
  BoundedExecutor(size_t num_threads, size_t queue_capacity);
  ~BoundedExecutor();

  BoundedExecutor(const BoundedExecutor&) = delete;
  BoundedExecutor& operator=(const BoundedExecutor&) = delete;

  /// Enqueues `task`, or fails with kResourceExhausted when the queue is
  /// at capacity (SERVER_BUSY) or the executor is draining/stopped.
  /// Fault seam "net.executor.enqueue".
  Status TrySubmit(std::function<void()> task);

  /// Stops admissions, runs the queue dry (in-flight tasks complete),
  /// and joins the workers.  Idempotent.
  void Drain();

  size_t queue_capacity() const { return capacity_; }
  size_t queue_depth() const;

 private:
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable queue_idle_;
  std::deque<QueuedTask> queue_;
  size_t running_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace net
}  // namespace tagg
