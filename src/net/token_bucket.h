// TokenBucket: the per-connection rate limiter.
//
// Classic token bucket: `rate` tokens accrue per second up to `burst`;
// each admitted request spends one token.  A connection that outruns its
// bucket gets RATE_LIMITED replies until tokens accrue again — the
// session stays open (a paced client recovers without reconnecting).
//
// Single-threaded by design: each connection's bucket is only touched by
// the event-loop thread that owns the connection, so no atomics.

#pragma once

#include <algorithm>
#include <chrono>

namespace tagg {
namespace net {

class TokenBucket {
 public:
  /// rate <= 0 disables limiting (TryAcquire always admits).
  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec),
        burst_(std::max(burst, 1.0)),
        tokens_(burst_),
        last_(Clock::now()) {}

  /// Spends one token if available; false = rate limited.
  bool TryAcquire() {
    if (rate_ <= 0.0) return true;
    const Clock::time_point now = Clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - last_).count();
    last_ = now;
    tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  double tokens() const { return tokens_; }

 private:
  using Clock = std::chrono::steady_clock;

  double rate_;
  double burst_;
  double tokens_;
  Clock::time_point last_;
};

}  // namespace net
}  // namespace tagg
