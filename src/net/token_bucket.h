// TokenBucket: the per-connection rate limiter.
//
// Classic token bucket: `rate` tokens accrue per second up to `burst`;
// each admitted request spends one token.  A connection that outruns its
// bucket gets RATE_LIMITED replies until tokens accrue again — the
// session stays open (a paced client recovers without reconnecting).
//
// Mutated only by the event-loop thread that owns the connection; the
// token level is a relaxed atomic so /statz snapshots can read it from
// the admin thread without a lock (a torn-free but possibly stale read
// is exactly right for a diagnostics table).

#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>

namespace tagg {
namespace net {

class TokenBucket {
 public:
  /// rate <= 0 disables limiting (TryAcquire always admits).
  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec),
        burst_(std::max(burst, 1.0)),
        tokens_(burst_),
        last_(Clock::now()) {}

  /// Spends one token if available; false = rate limited.  Owning loop
  /// thread only.
  bool TryAcquire() {
    if (rate_ <= 0.0) return true;
    const Clock::time_point now = Clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - last_).count();
    last_ = now;
    double t = std::min(burst_,
                        tokens_.load(std::memory_order_relaxed) +
                            elapsed * rate_);
    const bool admitted = t >= 1.0;
    if (admitted) t -= 1.0;
    tokens_.store(t, std::memory_order_relaxed);
    return admitted;
  }

  bool unlimited() const { return rate_ <= 0.0; }

  /// Current token level; safe to call from any thread.
  double tokens() const { return tokens_.load(std::memory_order_relaxed); }

 private:
  using Clock = std::chrono::steady_clock;

  double rate_;
  double burst_;
  std::atomic<double> tokens_;
  Clock::time_point last_;
};

}  // namespace net
}  // namespace tagg
