// CSV import/export for valid-time relations.
//
// Format: a header row of attribute names, then one row per tuple.  Two
// reserved trailing columns, `valid_start` and `valid_end`, carry the
// tuple's validity period; `valid_end` accepts the literal "forever".
// Fields follow RFC-4180 quoting: commas/quotes/newlines inside a field
// require double quotes, with "" as the escaped quote.
//
// Attribute types are declared by the caller (schema-first import) or
// inferred from the data (int if every value parses as an integer, else
// double if numeric, else string).

#pragma once

#include <string>
#include <string_view>

#include "temporal/relation.h"
#include "util/result.h"

namespace tagg {

/// Column names reserved for the validity period.
inline constexpr std::string_view kValidStartColumn = "valid_start";
inline constexpr std::string_view kValidEndColumn = "valid_end";

/// Parses CSV text into a relation, inferring attribute types.
/// The header must contain `valid_start` and `valid_end` (any position);
/// all other columns become attributes in header order.
Result<Relation> ParseCsvRelation(std::string_view text,
                                  std::string relation_name);

/// Parses CSV text against a declared schema (the header's non-period
/// columns must match the schema's names, case-insensitively, in order).
Result<Relation> ParseCsvRelationWithSchema(std::string_view text,
                                            const Schema& schema,
                                            std::string relation_name);

/// Renders a relation as CSV (attributes, then valid_start, valid_end).
std::string RelationToCsv(const Relation& relation);

/// Reads and parses a CSV file from disk.
Result<Relation> LoadCsvRelation(const std::string& path,
                                 std::string relation_name);

/// Writes a relation to a CSV file.
Status SaveCsvRelation(const Relation& relation, const std::string& path);

}  // namespace tagg
