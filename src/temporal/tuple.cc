#include "temporal/tuple.h"

namespace tagg {

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ") @ " + valid_.ToString();
  return out;
}

}  // namespace tagg
