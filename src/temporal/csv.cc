#include "temporal/csv.h"

#include <charconv>
#include <cstdio>
#include <memory>
#include <vector>

#include "util/str.h"

namespace tagg {
namespace {

/// Splits CSV text into rows of fields with RFC-4180 quoting.
Result<std::vector<std::vector<std::string>>> SplitCsv(
    std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t i = 0;
  const size_t n = text.size();

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  while (i < n) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    switch (c) {
      case '"':
        if (field_started && !field.empty()) {
          return Status::InvalidArgument(StringPrintf(
              "unexpected quote inside unquoted field at offset %zu", i));
        }
        in_quotes = true;
        field_started = true;
        ++i;
        break;
      case ',':
        end_field();
        ++i;
        break;
      case '\r':
        ++i;  // tolerate CRLF
        break;
      case '\n':
        end_row();
        ++i;
        break;
      default:
        field += c;
        field_started = true;
        ++i;
        break;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field");
  }
  // Final row without trailing newline.
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

bool ParseInt(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const std::string buf(s);
  *out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

Result<Instant> ParseInstantField(std::string_view s, size_t row) {
  if (EqualsIgnoreCase(Trim(s), "forever")) return kForever;
  int64_t v = 0;
  if (!ParseInt(Trim(s), &v)) {
    return Status::InvalidArgument(
        StringPrintf("row %zu: invalid timestamp '%.*s'", row,
                     static_cast<int>(s.size()), s.data()));
  }
  return v;
}

struct Layout {
  std::vector<size_t> attribute_columns;  // CSV column -> attribute order
  size_t start_column = 0;
  size_t end_column = 0;
  std::vector<std::string> attribute_names;
};

Result<Layout> ParseHeader(const std::vector<std::string>& header) {
  Layout layout;
  bool saw_start = false;
  bool saw_end = false;
  for (size_t c = 0; c < header.size(); ++c) {
    const std::string_view name = Trim(header[c]);
    if (EqualsIgnoreCase(name, kValidStartColumn)) {
      if (saw_start) {
        return Status::InvalidArgument("duplicate valid_start column");
      }
      layout.start_column = c;
      saw_start = true;
    } else if (EqualsIgnoreCase(name, kValidEndColumn)) {
      if (saw_end) {
        return Status::InvalidArgument("duplicate valid_end column");
      }
      layout.end_column = c;
      saw_end = true;
    } else {
      layout.attribute_columns.push_back(c);
      layout.attribute_names.emplace_back(name);
    }
  }
  if (!saw_start || !saw_end) {
    return Status::InvalidArgument(
        "CSV header must contain valid_start and valid_end columns");
  }
  return layout;
}

/// Infers the narrowest type covering every non-empty value in a column.
ValueType InferType(const std::vector<std::vector<std::string>>& rows,
                    size_t column) {
  bool all_int = true;
  bool all_numeric = true;
  bool any = false;
  for (size_t r = 1; r < rows.size(); ++r) {
    if (column >= rows[r].size()) continue;
    const std::string_view s = Trim(rows[r][column]);
    if (s.empty()) continue;  // NULL
    any = true;
    int64_t i64;
    double d;
    if (!ParseInt(s, &i64)) all_int = false;
    if (!ParseDouble(s, &d)) all_numeric = false;
  }
  if (!any) return ValueType::kString;
  if (all_int) return ValueType::kInt;
  if (all_numeric) return ValueType::kDouble;
  return ValueType::kString;
}

Result<Value> ParseValueField(std::string_view raw, ValueType type,
                              size_t row) {
  const std::string_view s = Trim(raw);
  if (s.empty()) return Value::Null();
  switch (type) {
    case ValueType::kInt: {
      int64_t v;
      if (!ParseInt(s, &v)) {
        return Status::InvalidArgument(
            StringPrintf("row %zu: '%.*s' is not an integer", row,
                         static_cast<int>(s.size()), s.data()));
      }
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      double v;
      if (!ParseDouble(s, &v)) {
        return Status::InvalidArgument(
            StringPrintf("row %zu: '%.*s' is not numeric", row,
                         static_cast<int>(s.size()), s.data()));
      }
      return Value::Double(v);
    }
    default:
      return Value::String(std::string(raw));
  }
}

Result<Relation> BuildRelation(
    const std::vector<std::vector<std::string>>& rows, const Layout& layout,
    const Schema& schema, std::string relation_name) {
  Relation relation(schema, std::move(relation_name));
  relation.Reserve(rows.size() - 1);
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& fields = rows[r];
    if (fields.size() != rows[0].size()) {
      return Status::InvalidArgument(StringPrintf(
          "row %zu has %zu fields, header has %zu", r, fields.size(),
          rows[0].size()));
    }
    std::vector<Value> values;
    values.reserve(layout.attribute_columns.size());
    for (size_t a = 0; a < layout.attribute_columns.size(); ++a) {
      TAGG_ASSIGN_OR_RETURN(
          Value v, ParseValueField(fields[layout.attribute_columns[a]],
                                   schema.attribute(a).type, r));
      values.push_back(std::move(v));
    }
    TAGG_ASSIGN_OR_RETURN(Instant start,
                          ParseInstantField(fields[layout.start_column], r));
    TAGG_ASSIGN_OR_RETURN(Instant end,
                          ParseInstantField(fields[layout.end_column], r));
    TAGG_ASSIGN_OR_RETURN(Period valid, Period::Make(start, end));
    TAGG_RETURN_IF_ERROR(relation.Append(Tuple(std::move(values), valid)));
  }
  return relation;
}

std::string EscapeField(const std::string& s) {
  bool needs_quotes = false;
  for (char c : s) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

std::string ValueToCsvField(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt:
      return std::to_string(v.AsInt());
    case ValueType::kDouble:
      return StringPrintf("%.17g", v.AsDouble());
    case ValueType::kString:
      return EscapeField(v.AsString());
  }
  return "";
}

}  // namespace

Result<Relation> ParseCsvRelation(std::string_view text,
                                  std::string relation_name) {
  TAGG_ASSIGN_OR_RETURN(auto rows, SplitCsv(text));
  if (rows.empty()) {
    return Status::InvalidArgument("CSV input has no header row");
  }
  TAGG_ASSIGN_OR_RETURN(Layout layout, ParseHeader(rows[0]));
  std::vector<Attribute> attributes;
  for (size_t a = 0; a < layout.attribute_columns.size(); ++a) {
    attributes.push_back({layout.attribute_names[a],
                          InferType(rows, layout.attribute_columns[a])});
  }
  TAGG_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attributes)));
  return BuildRelation(rows, layout, schema, std::move(relation_name));
}

Result<Relation> ParseCsvRelationWithSchema(std::string_view text,
                                            const Schema& schema,
                                            std::string relation_name) {
  TAGG_ASSIGN_OR_RETURN(auto rows, SplitCsv(text));
  if (rows.empty()) {
    return Status::InvalidArgument("CSV input has no header row");
  }
  TAGG_ASSIGN_OR_RETURN(Layout layout, ParseHeader(rows[0]));
  if (layout.attribute_names.size() != schema.size()) {
    return Status::InvalidArgument(StringPrintf(
        "CSV has %zu attribute columns, schema declares %zu",
        layout.attribute_names.size(), schema.size()));
  }
  for (size_t a = 0; a < schema.size(); ++a) {
    if (!EqualsIgnoreCase(layout.attribute_names[a],
                          schema.attribute(a).name)) {
      return Status::InvalidArgument(
          "CSV column '" + layout.attribute_names[a] +
          "' does not match schema attribute '" + schema.attribute(a).name +
          "'");
    }
  }
  return BuildRelation(rows, layout, schema, std::move(relation_name));
}

std::string RelationToCsv(const Relation& relation) {
  std::string out;
  const Schema& schema = relation.schema();
  for (size_t a = 0; a < schema.size(); ++a) {
    out += EscapeField(schema.attribute(a).name);
    out += ",";
  }
  out += std::string(kValidStartColumn) + "," +
         std::string(kValidEndColumn) + "\n";
  for (const Tuple& t : relation) {
    for (size_t a = 0; a < schema.size(); ++a) {
      out += ValueToCsvField(t.value(a));
      out += ",";
    }
    out += InstantToString(t.start()) + "," + InstantToString(t.end()) +
           "\n";
  }
  return out;
}

Result<Relation> LoadCsvRelation(const std::string& path,
                                 std::string relation_name) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "'");
  }
  std::string text;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::IOError("error reading '" + path + "'");
  return ParseCsvRelation(text, std::move(relation_name));
}

Status SaveCsvRelation(const Relation& relation, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot create '" + path + "'");
  }
  const std::string text = RelationToCsv(relation);
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = written == text.size() && std::fclose(f) == 0;
  if (!ok) return Status::IOError("error writing '" + path + "'");
  return Status::OK();
}

}  // namespace tagg
