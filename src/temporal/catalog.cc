#include "temporal/catalog.h"

#include "util/str.h"

namespace tagg {

Status Catalog::Register(std::shared_ptr<Relation> relation,
                         RelationStats stats) {
  if (relation == nullptr) {
    return Status::InvalidArgument("cannot register null relation");
  }
  if (relation->name().empty()) {
    return Status::InvalidArgument("relation must be named to be registered");
  }
  const std::string key = ToLower(relation->name());
  if (entries_.contains(key)) {
    return Status::AlreadyExists("relation '" + relation->name() +
                                 "' already registered");
  }
  entries_.emplace(key, Entry{std::move(relation), stats});
  return Status::OK();
}

Result<std::shared_ptr<Relation>> Catalog::Get(std::string_view name) const {
  auto it = entries_.find(ToLower(name));
  if (it == entries_.end()) {
    return Status::NotFound("relation '" + std::string(name) + "' not found");
  }
  return it->second.relation;
}

Result<RelationStats> Catalog::GetStats(std::string_view name) const {
  auto it = entries_.find(ToLower(name));
  if (it == entries_.end()) {
    return Status::NotFound("relation '" + std::string(name) + "' not found");
  }
  return it->second.stats;
}

Status Catalog::SetStats(std::string_view name, RelationStats stats) {
  auto it = entries_.find(ToLower(name));
  if (it == entries_.end()) {
    return Status::NotFound("relation '" + std::string(name) + "' not found");
  }
  it->second.stats = stats;
  return Status::OK();
}

Status Catalog::AttachColumnBacking(
    std::string_view name, std::shared_ptr<const ColumnBacking> backing) {
  auto it = entries_.find(ToLower(name));
  if (it == entries_.end()) {
    return Status::NotFound("relation '" + std::string(name) + "' not found");
  }
  it->second.column_backing = std::move(backing);
  return Status::OK();
}

std::shared_ptr<const ColumnBacking> Catalog::GetColumnBacking(
    std::string_view name) const {
  auto it = entries_.find(ToLower(name));
  if (it == entries_.end()) return nullptr;
  return it->second.column_backing;
}

Status Catalog::Drop(std::string_view name) {
  auto it = entries_.find(ToLower(name));
  if (it == entries_.end()) {
    return Status::NotFound("relation '" + std::string(name) + "' not found");
  }
  entries_.erase(it);
  return Status::OK();
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    out.push_back(entry.relation->name());
  }
  return out;
}

}  // namespace tagg
