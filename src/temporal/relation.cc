#include "temporal/relation.h"

#include <algorithm>

namespace tagg {

Status Relation::Append(Tuple tuple) {
  TAGG_RETURN_IF_ERROR(schema_.Validate(tuple.values()));
  tuples_.push_back(std::move(tuple));
  return Status::OK();
}

void Relation::SortByTime() {
  std::stable_sort(tuples_.begin(), tuples_.end(),
                   [](const Tuple& a, const Tuple& b) {
                     return a.valid() < b.valid();
                   });
}

bool Relation::IsSortedByTime() const {
  for (size_t i = 1; i < tuples_.size(); ++i) {
    if (tuples_[i].valid() < tuples_[i - 1].valid()) return false;
  }
  return true;
}

Result<Period> Relation::Lifespan() const {
  if (tuples_.empty()) {
    return Status::InvalidArgument("empty relation has no lifespan");
  }
  Instant lo = tuples_[0].start();
  Instant hi = tuples_[0].end();
  for (const Tuple& t : tuples_) {
    lo = std::min(lo, t.start());
    hi = std::max(hi, t.end());
  }
  return Period(lo, hi);
}

Relation Relation::Filter(
    const std::function<bool(const Tuple&)>& pred) const {
  Relation out(schema_, name_);
  for (const Tuple& t : tuples_) {
    if (pred(t)) out.AppendUnchecked(t);
  }
  return out;
}

std::string Relation::ToString(size_t max_rows) const {
  std::string out = name_.empty() ? "<relation>" : name_;
  out += " " + schema_.ToString() + ", " + std::to_string(size()) +
         " tuples\n";
  const size_t shown = std::min(max_rows, tuples_.size());
  for (size_t i = 0; i < shown; ++i) {
    out += "  " + tuples_[i].ToString() + "\n";
  }
  if (shown < tuples_.size()) {
    out += "  ... (" + std::to_string(tuples_.size() - shown) + " more)\n";
  }
  return out;
}

}  // namespace tagg
