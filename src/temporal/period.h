// Period: a closed interval [start, end] of instants.
//
// The paper assumes closed intervals (Section 5): a tuple valid over
// [18, forever] overlaps every instant t with 18 <= t.  All interval
// arithmetic in the library (constant intervals, tree node ranges, tuple
// validity) uses this type.

#pragma once

#include <string>

#include "temporal/instant.h"
#include "util/result.h"

namespace tagg {

/// A closed, non-empty interval of instants [start, end], start <= end.
class Period {
 public:
  /// Constructs [kOrigin, kForever], the whole time-line.
  Period() : start_(kOrigin), end_(kForever) {}

  /// Constructs [start, end] without validation; prefer Make() for
  /// untrusted input.  Requires start <= end.
  Period(Instant start, Instant end);

  /// Validating factory: rejects start > end and out-of-line bounds.
  static Result<Period> Make(Instant start, Instant end);

  /// The whole time-line [kOrigin, kForever].
  static Period All() { return Period(); }

  /// A single instant [t, t].
  static Period At(Instant t) { return Period(t, t); }

  Instant start() const { return start_; }
  Instant end() const { return end_; }

  /// Number of instants in the period; kForever-sized periods saturate.
  Instant duration() const;

  bool Contains(Instant t) const { return start_ <= t && t <= end_; }
  bool Contains(const Period& other) const {
    return start_ <= other.start_ && other.end_ <= end_;
  }
  /// Closed-interval overlap: the two periods share at least one instant.
  bool Overlaps(const Period& other) const {
    return start_ <= other.end_ && other.start_ <= end_;
  }
  /// True when `other` begins exactly one instant after this period ends.
  bool MeetsBefore(const Period& other) const {
    return end_ < kForever && end_ + 1 == other.start_;
  }

  /// The overlap of two periods; error if they are disjoint.
  Result<Period> Intersect(const Period& other) const;

  /// The smallest period covering both inputs; error if they neither
  /// overlap nor meet (a period cannot have holes).
  Result<Period> Union(const Period& other) const;

  bool operator==(const Period& other) const {
    return start_ == other.start_ && end_ == other.end_;
  }
  bool operator!=(const Period& other) const { return !(*this == other); }

  /// Orders by start, ties broken by end — the paper's "totally ordered by
  /// time" order (Section 5.2).
  bool operator<(const Period& other) const {
    if (start_ != other.start_) return start_ < other.start_;
    return end_ < other.end_;
  }

  /// "[start, end]", with kForever printed as "forever".
  std::string ToString() const;

 private:
  Instant start_;
  Instant end_;
};

}  // namespace tagg
