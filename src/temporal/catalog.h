// Catalog: a name -> relation registry used by the query layer.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "temporal/relation.h"
#include "util/result.h"

namespace tagg {

/// Optimizer-relevant statistics a catalog may carry per relation
/// (Section 6.3: the optimizer "can exploit information on the sortedness
/// of the underlying relation").
struct RelationStats {
  bool known_sorted = false;
  /// Declared retroactive bound: tuples arrive at most `k` positions out of
  /// time order (a k-ordered relation / retroactively bounded relation).
  /// Negative means unknown.
  int64_t declared_k = -1;
};

/// Owns named relations and their declared statistics.
class Catalog {
 public:
  /// Registers a relation under its name; fails on duplicates.
  Status Register(std::shared_ptr<Relation> relation,
                  RelationStats stats = {});

  /// Looks up a relation by (case-insensitive) name.
  Result<std::shared_ptr<Relation>> Get(std::string_view name) const;

  /// Stats declared for a relation; defaults when never declared.
  Result<RelationStats> GetStats(std::string_view name) const;

  /// Replaces the stats for an existing relation.
  Status SetStats(std::string_view name, RelationStats stats);

  /// Removes a relation; fails when absent.
  Status Drop(std::string_view name);

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  struct Entry {
    std::shared_ptr<Relation> relation;
    RelationStats stats;
  };
  // Keyed by lowercased name.
  std::map<std::string, Entry> entries_;
};

}  // namespace tagg
