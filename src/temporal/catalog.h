// Catalog: a name -> relation registry used by the query layer.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "temporal/relation.h"
#include "util/result.h"

namespace tagg {

/// Optimizer-relevant statistics a catalog may carry per relation
/// (Section 6.3: the optimizer "can exploit information on the sortedness
/// of the underlying relation").
struct RelationStats {
  bool known_sorted = false;
  /// Declared retroactive bound: tuples arrive at most `k` positions out of
  /// time order (a k-ordered relation / retroactively bounded relation).
  /// Negative means unknown.
  int64_t declared_k = -1;
};

/// A columnar on-disk backing of a registered relation (the stored-relation
/// format of storage/column_relation).  The catalog sits below storage, so
/// it holds the backing through this minimal interface; the query layer
/// downcasts to the concrete ColumnRelation when planning a pruned scan.
class ColumnBacking {
 public:
  virtual ~ColumnBacking() = default;

  /// Rows stored in the backing file.  The executor only routes to the
  /// backing while this matches the in-memory relation's size (the same
  /// freshness discipline as the live-index epoch check).
  virtual uint64_t row_count() const = 0;

  /// Path of the backing file, for diagnostics and EXPLAIN output.
  virtual const std::string& path() const = 0;
};

/// Owns named relations and their declared statistics.
class Catalog {
 public:
  /// Registers a relation under its name; fails on duplicates.
  Status Register(std::shared_ptr<Relation> relation,
                  RelationStats stats = {});

  /// Looks up a relation by (case-insensitive) name.
  Result<std::shared_ptr<Relation>> Get(std::string_view name) const;

  /// Stats declared for a relation; defaults when never declared.
  Result<RelationStats> GetStats(std::string_view name) const;

  /// Replaces the stats for an existing relation.
  Status SetStats(std::string_view name, RelationStats stats);

  /// Attaches (or, with nullptr, detaches) a columnar backing to an
  /// existing relation.  The backing file is always time-sorted, but the
  /// in-memory relation need not be — the stats are left untouched.
  Status AttachColumnBacking(std::string_view name,
                             std::shared_ptr<const ColumnBacking> backing);

  /// The columnar backing of a relation; nullptr when the relation is
  /// unknown or has no backing attached.
  std::shared_ptr<const ColumnBacking> GetColumnBacking(
      std::string_view name) const;

  /// Removes a relation; fails when absent.
  Status Drop(std::string_view name);

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  struct Entry {
    std::shared_ptr<Relation> relation;
    RelationStats stats;
    std::shared_ptr<const ColumnBacking> column_backing;
  };
  // Keyed by lowercased name.
  std::map<std::string, Entry> entries_;
};

}  // namespace tagg
