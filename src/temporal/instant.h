// Instants: points on the discrete time-line of a temporal database.
//
// The paper (Section 2) models time as a sequence of instants, "the smallest
// measurable period of time in a temporal database", with 0 as the origin
// and infinity as the greatest timestamp.  We represent an instant as a
// 64-bit integer; kForever plays the role of the paper's "oo" timestamp.

#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace tagg {

/// A point on the discrete time-line.
using Instant = int64_t;

/// The origin of the time-line (the paper's "0").
inline constexpr Instant kOrigin = 0;

/// The greatest representable timestamp (the paper's "oo" / "forever").
/// One less than the int64 maximum so that `t + 1` never overflows while
/// splitting intervals.
inline constexpr Instant kForever =
    std::numeric_limits<Instant>::max() - 1;

/// Renders an instant, printing kForever as "forever".
inline std::string InstantToString(Instant t) {
  if (t >= kForever) return "forever";
  return std::to_string(t);
}

}  // namespace tagg
