#include "temporal/period.h"

#include <algorithm>

#include "util/logging.h"
#include "util/str.h"

namespace tagg {

Period::Period(Instant start, Instant end) : start_(start), end_(end) {
  TAGG_DCHECK(start <= end) << "invalid period [" << start << ", " << end
                            << "]";
}

Result<Period> Period::Make(Instant start, Instant end) {
  if (start > end) {
    return Status::InvalidArgument(
        StringPrintf("period start %lld after end %lld",
                     static_cast<long long>(start),
                     static_cast<long long>(end)));
  }
  if (start < kOrigin || end > kForever) {
    return Status::OutOfRange("period outside [origin, forever]");
  }
  return Period(start, end);
}

Instant Period::duration() const {
  if (end_ >= kForever) return kForever;
  return end_ - start_ + 1;
}

Result<Period> Period::Intersect(const Period& other) const {
  if (!Overlaps(other)) {
    return Status::InvalidArgument("periods " + ToString() + " and " +
                                   other.ToString() + " are disjoint");
  }
  return Period(std::max(start_, other.start_), std::min(end_, other.end_));
}

Result<Period> Period::Union(const Period& other) const {
  if (!Overlaps(other) && !MeetsBefore(other) && !other.MeetsBefore(*this)) {
    return Status::InvalidArgument("periods " + ToString() + " and " +
                                   other.ToString() +
                                   " neither overlap nor meet");
  }
  return Period(std::min(start_, other.start_), std::max(end_, other.end_));
}

std::string Period::ToString() const {
  return "[" + InstantToString(start_) + ", " + InstantToString(end_) + "]";
}

}  // namespace tagg
