#include "temporal/algebra.h"

#include <algorithm>

#include "util/str.h"

namespace tagg {
namespace {

/// Orders by attribute values first (arbitrary but total within a
/// schema-consistent relation), then by period — adjacent placement of
/// value-equivalent tuples is what coalescing and dedup need.
bool ValueThenTimeLess(const Tuple& a, const Tuple& b) {
  for (size_t i = 0; i < a.arity() && i < b.arity(); ++i) {
    auto cmp = a.value(i).Compare(b.value(i));
    // Schema-consistent columns always compare; treat the (impossible)
    // error as equality rather than corrupting the order.
    const int c = cmp.ok() ? cmp.value() : 0;
    if (c != 0) return c < 0;
  }
  if (a.arity() != b.arity()) return a.arity() < b.arity();
  return a.valid() < b.valid();
}

bool ValueEquivalent(const Tuple& a, const Tuple& b) {
  if (a.arity() != b.arity()) return false;
  for (size_t i = 0; i < a.arity(); ++i) {
    auto cmp = a.value(i).Compare(b.value(i));
    if (!cmp.ok() || cmp.value() != 0) return false;
  }
  return true;
}

}  // namespace

Relation RemoveDuplicateTuples(const Relation& relation) {
  std::vector<Tuple> tuples(relation.begin(), relation.end());
  std::stable_sort(tuples.begin(), tuples.end(), ValueThenTimeLess);
  Relation out(relation.schema(), relation.name());
  out.Reserve(tuples.size());
  for (Tuple& t : tuples) {
    if (!out.empty() && ValueEquivalent(out.tuples().back(), t) &&
        out.tuples().back().valid() == t.valid()) {
      continue;
    }
    out.AppendUnchecked(std::move(t));
  }
  // Restore the canonical time order.
  Relation sorted(relation.schema(), relation.name());
  sorted.Reserve(out.size());
  std::vector<Tuple> deduped(out.begin(), out.end());
  std::stable_sort(deduped.begin(), deduped.end(),
                   [](const Tuple& a, const Tuple& b) {
                     return a.valid() < b.valid();
                   });
  for (Tuple& t : deduped) sorted.AppendUnchecked(std::move(t));
  return sorted;
}

Relation CoalesceRelation(const Relation& relation) {
  std::vector<Tuple> tuples(relation.begin(), relation.end());
  std::stable_sort(tuples.begin(), tuples.end(), ValueThenTimeLess);

  std::vector<Tuple> merged;
  merged.reserve(tuples.size());
  for (Tuple& t : tuples) {
    if (!merged.empty() && ValueEquivalent(merged.back(), t)) {
      Tuple& prev = merged.back();
      if (prev.valid().Overlaps(t.valid()) ||
          prev.valid().MeetsBefore(t.valid())) {
        const Instant end =
            t.end() > prev.end() ? t.end() : prev.end();
        prev = Tuple(prev.values(), Period(prev.start(), end));
        continue;
      }
    }
    merged.push_back(std::move(t));
  }

  std::stable_sort(merged.begin(), merged.end(),
                   [](const Tuple& a, const Tuple& b) {
                     return a.valid() < b.valid();
                   });
  Relation out(relation.schema(), relation.name());
  out.Reserve(merged.size());
  for (Tuple& t : merged) out.AppendUnchecked(std::move(t));
  return out;
}

Relation TimesliceAt(const Relation& relation, Instant t) {
  return relation.Filter(
      [t](const Tuple& tuple) { return tuple.valid().Contains(t); });
}

namespace {

/// Lexicographic comparison of the chosen key attributes; schema-typed
/// columns always compare.
int CompareKeys(const Tuple& a, const std::vector<size_t>& a_keys,
                const Tuple& b, const std::vector<size_t>& b_keys) {
  for (size_t i = 0; i < a_keys.size(); ++i) {
    auto cmp = a.value(a_keys[i]).Compare(b.value(b_keys[i]));
    const int c = cmp.ok() ? cmp.value() : 0;
    if (c != 0) return c;
  }
  return 0;
}

}  // namespace

Result<Relation> TemporalJoin(const Relation& left, const Relation& right,
                              const std::vector<size_t>& left_keys,
                              const std::vector<size_t>& right_keys) {
  if (left_keys.size() != right_keys.size()) {
    return Status::InvalidArgument(
        "join requires the same number of key attributes on both sides");
  }
  for (size_t k : left_keys) {
    if (k >= left.schema().size()) {
      return Status::InvalidArgument("left join key out of range");
    }
  }
  for (size_t k : right_keys) {
    if (k >= right.schema().size()) {
      return Status::InvalidArgument("right join key out of range");
    }
  }
  for (size_t i = 0; i < left_keys.size(); ++i) {
    const ValueType lt = left.schema().attribute(left_keys[i]).type;
    const ValueType rt = right.schema().attribute(right_keys[i]).type;
    const bool numeric_l = lt == ValueType::kInt || lt == ValueType::kDouble;
    const bool numeric_r = rt == ValueType::kInt || rt == ValueType::kDouble;
    if (numeric_l != numeric_r) {
      return Status::InvalidArgument(
          "join keys have incomparable types");
    }
  }

  // Output schema: left attributes, then right attributes with collisions
  // prefixed.
  std::vector<Attribute> attributes = left.schema().attributes();
  for (const Attribute& attr : right.schema().attributes()) {
    std::string name = attr.name;
    if (left.schema().IndexOf(name).has_value()) {
      name = "right_" + name;
    }
    attributes.push_back({std::move(name), attr.type});
  }
  TAGG_ASSIGN_OR_RETURN(Schema out_schema,
                        Schema::Make(std::move(attributes)));
  Relation out(out_schema,
               left.name().empty() || right.name().empty()
                   ? "join"
                   : left.name() + "_" + right.name());

  // Sort both sides by (keys, start).
  auto make_sorted = [](const Relation& r, const std::vector<size_t>& keys) {
    std::vector<const Tuple*> v;
    v.reserve(r.size());
    for (const Tuple& t : r) v.push_back(&t);
    std::stable_sort(v.begin(), v.end(),
                     [&](const Tuple* a, const Tuple* b) {
                       const int c = CompareKeys(*a, keys, *b, keys);
                       if (c != 0) return c < 0;
                       return a->valid() < b->valid();
                     });
    return v;
  };
  const auto ls = make_sorted(left, left_keys);
  const auto rs = make_sorted(right, right_keys);

  size_t li = 0;
  size_t ri = 0;
  while (li < ls.size() && ri < rs.size()) {
    const int c = CompareKeys(*ls[li], left_keys, *rs[ri], right_keys);
    if (c < 0) {
      ++li;
      continue;
    }
    if (c > 0) {
      ++ri;
      continue;
    }
    // Key group boundaries on both sides.
    size_t lj = li;
    while (lj < ls.size() &&
           CompareKeys(*ls[li], left_keys, *ls[lj], left_keys) == 0) {
      ++lj;
    }
    size_t rj = ri;
    while (rj < rs.size() &&
           CompareKeys(*rs[ri], right_keys, *rs[rj], right_keys) == 0) {
      ++rj;
    }
    // All-pairs within the key group, filtered by temporal overlap (the
    // groups are small in practice; start-sorted order lets a smarter
    // implementation prune, which the tests do not require).
    for (size_t a = li; a < lj; ++a) {
      for (size_t b = ri; b < rj; ++b) {
        if (!ls[a]->valid().Overlaps(rs[b]->valid())) continue;
        auto meet = ls[a]->valid().Intersect(rs[b]->valid());
        std::vector<Value> values = ls[a]->values();
        values.insert(values.end(), rs[b]->values().begin(),
                      rs[b]->values().end());
        out.AppendUnchecked(Tuple(std::move(values), meet.value()));
      }
    }
    li = lj;
    ri = rj;
  }
  // Canonical time order for downstream aggregation.
  Relation sorted_out(out.schema(), out.name());
  std::vector<Tuple> tuples(out.begin(), out.end());
  std::stable_sort(tuples.begin(), tuples.end(),
                   [](const Tuple& a, const Tuple& b) {
                     return a.valid() < b.valid();
                   });
  sorted_out.Reserve(tuples.size());
  for (Tuple& t : tuples) sorted_out.AppendUnchecked(std::move(t));
  return sorted_out;
}

Relation ClipToWindow(const Relation& relation, const Period& window) {
  Relation out(relation.schema(), relation.name());
  for (const Tuple& t : relation) {
    if (!t.valid().Overlaps(window)) continue;
    auto clipped = t.valid().Intersect(window);
    out.AppendUnchecked(Tuple(t.values(), clipped.value()));
  }
  return out;
}

}  // namespace tagg
