#include "temporal/value.h"

#include <functional>

namespace tagg {

std::string_view ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

Result<double> Value::ToNumeric() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(AsInt());
    case ValueType::kDouble:
      return AsDouble();
    default:
      return Status::InvalidArgument(
          std::string("value of type ") +
          std::string(ValueTypeToString(type())) + " is not numeric");
  }
}

Result<int> Value::Compare(const Value& other) const {
  // Nulls: equal to each other, less than non-null.
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  const bool numeric_a = type() != ValueType::kString;
  const bool numeric_b = other.type() != ValueType::kString;
  if (numeric_a != numeric_b) {
    return Status::InvalidArgument("cannot compare " + ToString() + " with " +
                                   other.ToString());
  }
  if (numeric_a) {
    if (type() == ValueType::kInt && other.type() == ValueType::kInt) {
      const int64_t a = AsInt(), b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    const double a = ToNumeric().value();
    const double b = other.ToNumeric().value();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  const int c = AsString().compare(other.AsString());
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      std::string s = std::to_string(AsDouble());
      return s;
    }
    case ValueType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9E3779B9u;
    case ValueType::kInt:
      return std::hash<int64_t>{}(AsInt()) ^ 0x1;
    case ValueType::kDouble:
      return std::hash<double>{}(AsDouble()) ^ 0x2;
    case ValueType::kString:
      return std::hash<std::string>{}(AsString()) ^ 0x3;
  }
  return 0;
}

}  // namespace tagg
