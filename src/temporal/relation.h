// Relation: an in-memory valid-time relation (schema + tuples).
//
// Algorithms in src/core consume relations through a single forward scan,
// matching the paper's "all algorithms read the relation only one time"
// property (Section 6).

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "temporal/schema.h"
#include "temporal/tuple.h"
#include "util/result.h"

namespace tagg {

/// A named, schema-checked collection of valid-time tuples in insertion
/// order (the order the aggregation algorithms see them in).
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema, std::string name = "")
      : schema_(std::move(schema)), name_(std::move(name)) {}

  const Schema& schema() const { return schema_; }
  const std::string& name() const { return name_; }

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const Tuple& tuple(size_t i) const { return tuples_[i]; }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  std::vector<Tuple>::const_iterator begin() const { return tuples_.begin(); }
  std::vector<Tuple>::const_iterator end() const { return tuples_.end(); }

  /// Appends after validating against the schema.
  Status Append(Tuple tuple);

  /// Appends without validation (trusted internal callers, e.g. the
  /// workload generator).
  void AppendUnchecked(Tuple tuple) { tuples_.push_back(std::move(tuple)); }

  void Reserve(size_t n) { tuples_.reserve(n); }
  void Clear() { tuples_.clear(); }

  /// Sorts tuples "totally ordered by time": by start time, ties broken by
  /// end time (Section 5.2).  Stable, so value order among exact period
  /// ties is preserved.
  void SortByTime();

  /// True when the relation is totally ordered by time.
  bool IsSortedByTime() const;

  /// The smallest period covering every tuple's validity; error when empty.
  Result<Period> Lifespan() const;

  /// A copy containing only tuples satisfying `pred`.
  Relation Filter(const std::function<bool(const Tuple&)>& pred) const;

  /// Multi-line rendering for debugging and examples.
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::string name_;
  std::vector<Tuple> tuples_;
};

}  // namespace tagg
