// Temporal relational algebra utilities.
//
// The operations a temporal DBMS applies around aggregation:
//
//   * duplicate elimination — Section 7 of the paper: "Probably the best
//     single approach for this problem involves removing the duplicates
//     before the relation is processed, perhaps by sorting."  Implemented
//     exactly that way: sort by (values, period), drop exact repeats.
//
//   * valid-time coalescing — TSQL2's normal form: value-equivalent
//     tuples whose periods overlap or meet merge into maximal periods.
//
//   * timeslice — the snapshot of a valid-time relation at one instant
//     (or over a window), the "selection by time" used when a query's
//     valid clause restricts the time-line before aggregation.

#pragma once

#include "temporal/relation.h"
#include "util/result.h"

namespace tagg {

/// Removes exact duplicates (same attribute values AND same period),
/// keeping the first occurrence of each, by sorting a copy.  The result is
/// totally ordered by time.
Relation RemoveDuplicateTuples(const Relation& relation);

/// TSQL2 coalescing: merges value-equivalent tuples whose validity periods
/// overlap or meet into tuples with maximal periods.  The result is
/// totally ordered by time and duplicate-free.
Relation CoalesceRelation(const Relation& relation);

/// The tuples valid at instant `t`, with their full periods retained.
Relation TimesliceAt(const Relation& relation, Instant t);

/// The tuples overlapping `window`, with validity clipped to the window.
/// (Aggregating the result reproduces the original aggregate restricted
/// to the window.)
Relation ClipToWindow(const Relation& relation, const Period& window);

/// Valid-time (overlap) equijoin: for every pair of tuples from `left`
/// and `right` that agree on the join attributes AND whose validity
/// periods overlap, emits the concatenated attributes stamped with the
/// intersection of the two periods — the standard temporal join whose
/// output feeds temporal aggregation (e.g. joining employment spells with
/// department assignments before AVG(salary) GROUP BY dept).
///
/// Implemented as sort-merge on (join values, start time): both inputs
/// are sorted copies, so the cost is O(n log n + m log m + output).
/// Attribute-name collisions in the output schema are resolved with a
/// "right_" prefix.
Result<Relation> TemporalJoin(const Relation& left, const Relation& right,
                              const std::vector<size_t>& left_keys,
                              const std::vector<size_t>& right_keys);

}  // namespace tagg
