// Value: a dynamically typed attribute value (null, int64, double, string).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "util/result.h"

namespace tagg {

/// The type of an attribute or Value.
enum class ValueType : uint8_t { kNull = 0, kInt = 1, kDouble = 2,
                                 kString = 3 };

std::string_view ValueTypeToString(ValueType type);

/// A single attribute value.  Comparisons between numeric types coerce to
/// double; comparisons between incompatible types are errors.
class Value {
 public:
  /// Null value.
  Value() : repr_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Repr(v)); }
  static Value Double(double v) { return Value(Repr(v)); }
  static Value String(std::string v) { return Value(Repr(std::move(v))); }

  ValueType type() const {
    return static_cast<ValueType>(repr_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  /// The held int64; must hold kInt.
  int64_t AsInt() const { return std::get<int64_t>(repr_); }
  /// The held double; must hold kDouble.
  double AsDouble() const { return std::get<double>(repr_); }
  /// The held string; must hold kString.
  const std::string& AsString() const { return std::get<std::string>(repr_); }

  /// Numeric view of the value (int widened to double); error for
  /// null/string.
  Result<double> ToNumeric() const;

  /// Strict equality: same type and same contents (int 1 != double 1.0;
  /// use Compare for coercing comparison).
  bool operator==(const Value& other) const { return repr_ == other.repr_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Three-way comparison with numeric coercion; errors on incompatible
  /// types (string vs numeric).  Nulls compare equal to each other and
  /// less than everything else.
  Result<int> Compare(const Value& other) const;

  std::string ToString() const;

  /// Hash compatible with operator==.
  size_t Hash() const;

 private:
  using Repr = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Repr repr) : repr_(std::move(repr)) {}
  Repr repr_;
};

}  // namespace tagg
