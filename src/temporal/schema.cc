#include "temporal/schema.h"

#include "util/str.h"

namespace tagg {

Result<Schema> Schema::Make(std::vector<Attribute> attributes) {
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (attributes[i].name.empty()) {
      return Status::InvalidArgument("attribute name must not be empty");
    }
    if (attributes[i].type == ValueType::kNull) {
      return Status::InvalidArgument("attribute '" + attributes[i].name +
                                     "' must have a concrete type");
    }
    for (size_t j = 0; j < i; ++j) {
      if (EqualsIgnoreCase(attributes[i].name, attributes[j].name)) {
        return Status::InvalidArgument("duplicate attribute name '" +
                                       attributes[i].name + "'");
      }
    }
  }
  return Schema(std::move(attributes));
}

std::optional<size_t> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (EqualsIgnoreCase(attributes_[i].name, name)) return i;
  }
  return std::nullopt;
}

Status Schema::Validate(const std::vector<Value>& values) const {
  if (values.size() != attributes_.size()) {
    return Status::InvalidArgument(StringPrintf(
        "tuple has %zu values, schema has %zu attributes", values.size(),
        attributes_.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].is_null()) continue;
    if (values[i].type() != attributes_[i].type) {
      return Status::InvalidArgument(
          "attribute '" + attributes_[i].name + "' expects " +
          std::string(ValueTypeToString(attributes_[i].type)) + ", got " +
          std::string(ValueTypeToString(values[i].type())));
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += " ";
    out += ValueTypeToString(attributes_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace tagg
