// Schema: the ordered list of named, typed attributes of a relation.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "temporal/value.h"
#include "util/result.h"

namespace tagg {

/// One attribute of a schema.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kNull;

  bool operator==(const Attribute& other) const = default;
};

/// An immutable, ordered collection of attributes.  Attribute names are
/// case-insensitive and must be unique.
class Schema {
 public:
  Schema() = default;

  /// Validating factory: rejects duplicate (case-insensitive) names and
  /// empty names.
  static Result<Schema> Make(std::vector<Attribute> attributes);

  size_t size() const { return attributes_.size(); }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of the attribute with the given (case-insensitive) name.
  std::optional<size_t> IndexOf(std::string_view name) const;

  /// Checks that `values` matches this schema positionally: correct arity,
  /// and each value null or of the declared type.
  Status Validate(const std::vector<Value>& values) const;

  bool operator==(const Schema& other) const {
    return attributes_ == other.attributes_;
  }

  /// "(name int, salary double)" style rendering.
  std::string ToString() const;

 private:
  explicit Schema(std::vector<Attribute> attributes)
      : attributes_(std::move(attributes)) {}

  std::vector<Attribute> attributes_;
};

}  // namespace tagg
