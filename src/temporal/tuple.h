// Tuple: a row of attribute values stamped with a valid-time period.
//
// This models the paper's interval relations (Section 2): every tuple
// carries the closed interval of instants over which its facts hold.

#pragma once

#include <string>
#include <vector>

#include "temporal/period.h"
#include "temporal/value.h"

namespace tagg {

/// A valid-time tuple: explicit attribute values plus a validity period.
class Tuple {
 public:
  Tuple() = default;
  Tuple(std::vector<Value> values, Period valid)
      : values_(std::move(values)), valid_(valid) {}

  const std::vector<Value>& values() const { return values_; }
  const Value& value(size_t i) const { return values_[i]; }
  size_t arity() const { return values_.size(); }

  const Period& valid() const { return valid_; }
  Instant start() const { return valid_.start(); }
  Instant end() const { return valid_.end(); }

  /// Strict equality of values and period.
  bool operator==(const Tuple& other) const {
    return valid_ == other.valid_ && values_ == other.values_;
  }

  /// "(v1, v2, ...) @ [s, e]".
  std::string ToString() const;

 private:
  std::vector<Value> values_;
  Period valid_;
};

}  // namespace tagg
