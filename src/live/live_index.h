// Live temporal aggregate index: a resident, concurrently-queryable,
// incrementally-updatable serving structure.
//
// Every batch algorithm in src/core builds its structure from a whole
// relation, emits the result once, and throws the structure away.  The
// aggregation tree of Section 5.1, however, already stores *partial*
// aggregate states per node — exactly the shape needed to answer point
// and range queries and to absorb new tuples without a rebuild.  This
// module keeps one internal::SplitTree resident behind a SnapshotGate:
//
//   * Insert(period, input)    — O(depth) amortized, same as one batch
//                                insertion; the tree only ever grows
//                                (no §5.3 garbage collection: a serving
//                                index must answer about the whole past);
//   * AggregateAt(t)           — descend ONE root path combining the
//                                partial states, O(depth), allocation-free;
//   * AggregateOver(period)    — walk the canonical cover of the query
//                                range (subtrees disjoint from the range
//                                are pruned at their topmost node),
//                                emitting the coalesced constant-interval
//                                series, O(depth + answer);
//   * FoldOver(period)         — same walk, but the per-interval states
//                                are folded into a single value with the
//                                monoid Combine.
//
// FoldOver semantics: the fold is over the *constant-interval series*,
// one Combine per interval.  For the idempotent monoids (MIN, MAX) this
// is the true range aggregate — "the maximum salary at any instant in
// [a, b]".  For the additive monoids (COUNT, SUM, AVG) a tuple spanning
// several constant intervals contributes once per interval, so the fold
// answers "the sum over the series", not "the sum over distinct tuples";
// callers wanting per-tuple semantics should consume the series.
//
// Concurrency: one writer and any number of readers may run against the
// index simultaneously; every reader observes a consistent epoch-stamped
// snapshot (live/snapshot.h).  All five monoids of core/aggregates.h are
// supported, including AVG's (sum, count) pair.

#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/aggregation_tree.h"
#include "live/snapshot.h"
#include "obs/metrics.h"
#include "temporal/tuple.h"

namespace tagg {

namespace internal {

// Registry instruments shared by every live index, defined once in
// live_index.cc so the template methods below can publish without each
// instantiation re-resolving the name.
obs::Histogram& LiveProbeSeconds();
obs::Counter& LiveInsertsTotal();
obs::Counter& LiveProbesTotal();

}  // namespace internal

/// What a live index aggregates.
struct LiveIndexOptions {
  AggregateKind aggregate = AggregateKind::kCount;
  /// Index of the aggregated attribute in the tuples passed to
  /// InsertTuple(); AggregateOptions::kNoAttribute for COUNT(*).
  size_t attribute = AggregateOptions::kNoAttribute;
};

/// A point-in-time view of a live index's counters.
struct LiveIndexStats {
  /// Published version: the number of tuples the index has seen (absorbed
  /// or skipped as NULL).  Comparing this against the backing relation's
  /// size tells whether the index is fresh.
  uint64_t epoch = 0;
  /// Tuples actually folded into the tree (NULL inputs are seen but
  /// skipped, matching the batch path's SQL NULL semantics).
  uint64_t inserts_absorbed = 0;
  /// Point, range, and fold queries answered since construction.
  uint64_t queries_served = 0;
  /// Seconds since the current version was published (data staleness as
  /// observed by a reader arriving now).
  double snapshot_age_seconds = 0.0;
  size_t tree_depth = 0;
  size_t live_nodes = 0;
  /// Actual resident bytes of the tree's nodes, plus the paper's
  /// 16-bytes-per-node accounting of the same count (Section 6.2) for
  /// comparison with the batch algorithms' memory study.
  size_t live_bytes = 0;
  size_t paper_bytes = 0;

  std::string ToString() const;
};

/// Type-erased handle to a live temporal aggregate index.  Obtain one
/// from Create(); the concrete monoid is chosen by options.aggregate.
class LiveAggregateIndex {
 public:
  virtual ~LiveAggregateIndex() = default;

  /// Builds an empty index.  Fails when a value aggregate (SUM/MIN/MAX/
  /// AVG) is requested without an attribute.
  static Result<std::unique_ptr<LiveAggregateIndex>> Create(
      const LiveIndexOptions& options);

  const LiveIndexOptions& options() const { return options_; }

  // --- writer API (exclusive section per call) -------------------------

  /// Folds one (validity, input) pair into the index and publishes the
  /// new version.
  virtual Status Insert(const Period& valid, double input) = 0;

  /// Extracts the configured attribute from `tuple` and inserts.  NULL
  /// attribute values advance the epoch without contributing (SQL
  /// aggregate semantics; COUNT(attr) counts only non-null values).
  Status InsertTuple(const Tuple& tuple);

  // --- reader API (shared sections; any number of threads) -------------

  /// The aggregate's value at instant `t`: one root-path descent, O(depth).
  /// When `snapshot_epoch` is non-null it receives the epoch the answer
  /// was computed at.
  virtual Result<Value> AggregateAt(
      Instant t, uint64_t* snapshot_epoch = nullptr) const = 0;

  /// The constant-interval series restricted to `query`, in time order,
  /// exactly covering the query period.  `coalesce` merges adjacent
  /// value-equal intervals (TSQL2 coalescing) before returning.
  virtual Result<AggregateSeries> AggregateOver(
      const Period& query, bool coalesce = true,
      uint64_t* snapshot_epoch = nullptr) const = 0;

  /// The monoid fold of the constant-interval series over `query` (see
  /// the file comment for the per-monoid semantics).
  virtual Result<Value> FoldOver(
      const Period& query, uint64_t* snapshot_epoch = nullptr) const = 0;

  /// Lock-free peek at the published epoch (= tuples seen).  Freshness
  /// checks compare this against the backing relation's size.
  virtual uint64_t epoch() const = 0;

  virtual LiveIndexStats Stats() const = 0;

 protected:
  explicit LiveAggregateIndex(const LiveIndexOptions& options)
      : options_(options) {}

  /// Advances the epoch without folding anything (NULL input seen).
  virtual void NoteSkippedTuple() = 0;

 private:
  LiveIndexOptions options_;
};

namespace internal {

/// The concrete index for one monoid: a SplitTree behind a SnapshotGate.
template <typename Op>
class LiveIndexImpl final : public LiveAggregateIndex {
 public:
  using State = typename Op::State;
  using Tree = SplitTree<Op>;
  using Node = typename Tree::Node;

  explicit LiveIndexImpl(const LiveIndexOptions& options, Op op = Op())
      : LiveAggregateIndex(options), tree_(std::move(op)) {}

  Status Insert(const Period& valid, double input) override {
    auto ticket = gate_.EnterWriter();
    tree_.Add(valid.start(), valid.end(), input);
    ++inserts_absorbed_;
    LiveInsertsTotal().Increment();
    return Status::OK();
  }

  Result<Value> AggregateAt(Instant t,
                            uint64_t* snapshot_epoch) const override {
    if (t < kOrigin || t > kForever) {
      return Status::InvalidArgument("instant " + std::to_string(t) +
                                     " outside the time-line");
    }
    obs::ScopedLatencyTimer probe_timer(LiveProbeSeconds());
    LiveProbesTotal().Increment();
    auto snapshot = gate_.EnterReader();
    if (snapshot_epoch != nullptr) *snapshot_epoch = snapshot.epoch();
    queries_served_.fetch_add(1, std::memory_order_relaxed);

    // One root-path descent; the answer is the Combine of every state on
    // the path to the leaf whose range contains t (Section 5.1's leaf
    // evaluation, without materializing any other leaf).
    State acc = tree_.op.Identity();
    const Node* n = tree_.root;
    while (true) {
      acc = tree_.op.Combine(acc, n->state);
      if (n->IsLeaf()) break;
      n = t <= n->split ? n->left : n->right;
    }
    return Op::Finalize(acc);
  }

  Result<AggregateSeries> AggregateOver(
      const Period& query, bool coalesce,
      uint64_t* snapshot_epoch) const override {
    obs::ScopedLatencyTimer probe_timer(LiveProbeSeconds());
    LiveProbesTotal().Increment();
    AggregateSeries series;
    {
      auto snapshot = gate_.EnterReader();
      if (snapshot_epoch != nullptr) *snapshot_epoch = snapshot.epoch();
      queries_served_.fetch_add(1, std::memory_order_relaxed);
      // Leaves = (nodes + 1) / 2 bounds the emitted interval count; for
      // wide queries the reserve saves a dozen reallocations of a
      // hundreds-of-thousands-element vector.
      series.intervals.reserve(tree_.arena.live_nodes() / 2 + 1);
      WalkRange(query, [&](Instant lo, Instant hi, const State& st) {
        series.intervals.push_back({Period(lo, hi), Op::Finalize(st)});
      });
      series.stats.tuples_processed = inserts_absorbed_;
      series.stats.peak_live_nodes = tree_.arena.live_nodes();
      series.stats.peak_live_bytes = tree_.arena.live_bytes();
      series.stats.peak_paper_bytes =
          tree_.arena.live_nodes() * kPaperNodeBytes;
      series.stats.nodes_allocated = tree_.arena.total_allocated_nodes();
    }
    if (coalesce) {
      series.intervals = CoalesceEqualValues(std::move(series.intervals));
    }
    series.stats.intervals_emitted = series.intervals.size();
    return series;
  }

  Result<Value> FoldOver(const Period& query,
                         uint64_t* snapshot_epoch) const override {
    obs::ScopedLatencyTimer probe_timer(LiveProbeSeconds());
    LiveProbesTotal().Increment();
    auto snapshot = gate_.EnterReader();
    if (snapshot_epoch != nullptr) *snapshot_epoch = snapshot.epoch();
    queries_served_.fetch_add(1, std::memory_order_relaxed);
    State acc = tree_.op.Identity();
    WalkRange(query, [&](Instant, Instant, const State& st) {
      acc = tree_.op.Combine(acc, st);
    });
    return Op::Finalize(acc);
  }

  uint64_t epoch() const override { return gate_.epoch(); }

  LiveIndexStats Stats() const override {
    auto snapshot = gate_.EnterReader();
    LiveIndexStats stats;
    stats.epoch = snapshot.epoch();
    stats.inserts_absorbed = inserts_absorbed_;
    stats.queries_served = queries_served_.load(std::memory_order_relaxed);
    stats.snapshot_age_seconds = snapshot.age_seconds();
    stats.tree_depth = tree_.Depth();
    stats.live_nodes = tree_.arena.live_nodes();
    stats.live_bytes = tree_.arena.live_bytes();
    stats.paper_bytes = tree_.arena.live_nodes() * kPaperNodeBytes;
    return stats;
  }

 protected:
  void NoteSkippedTuple() override {
    auto ticket = gate_.EnterWriter();
    // Publishing an otherwise-unchanged tree still advances the epoch:
    // the skipped tuple is now accounted for in the index's view of the
    // relation.
  }

 private:
  /// In-order walk over the part of the tree overlapping `query`, with
  /// leaf ranges clipped to the query period.  Subtrees disjoint from the
  /// query are pruned at their topmost node (the canonical-cover
  /// shortcut), so the walk visits O(depth + leaves overlapping query)
  /// nodes.  Uses a local stack: the shared SplitTree scratch stacks are
  /// writer-owned and must not be touched by concurrent readers.
  template <typename EmitFn>
  void WalkRange(const Period& query, EmitFn&& emit) const {
    struct Frame {
      const Node* n;
      Instant lo;
      Instant hi;
      State acc;
    };
    std::vector<Frame> stack;
    stack.reserve(64);  // bounded by tree depth
    Frame f{tree_.root, tree_.lo, kForever, tree_.op.Identity()};
    while (true) {
      // Descend the left spine in place, stacking only right siblings:
      // left children never round-trip through the stack, which halves
      // the frame traffic of the naive push-both scheme.
      for (;;) {
        const Instant cs = f.lo > query.start() ? f.lo : query.start();
        const Instant ce = f.hi < query.end() ? f.hi : query.end();
        if (cs > ce) break;  // disjoint from the query: prune
        const Node* n = f.n;
        const State combined = tree_.op.Combine(f.acc, n->state);
        if (n->IsLeaf()) {
          emit(cs, ce, combined);
          break;
        }
        stack.push_back({n->right, n->split + 1, f.hi, combined});
        f = {n->left, f.lo, n->split, combined};
      }
      if (stack.empty()) return;
      f = stack.back();
      stack.pop_back();
    }
  }

  mutable SnapshotGate gate_;
  Tree tree_;
  uint64_t inserts_absorbed_ = 0;  // guarded by gate_'s writer section
  mutable std::atomic<uint64_t> queries_served_{0};
};

}  // namespace internal

}  // namespace tagg
