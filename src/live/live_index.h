// Live temporal aggregate index: a resident, concurrently-queryable,
// incrementally-updatable serving structure.
//
// Every batch algorithm in src/core builds its structure from a whole
// relation, emits the result once, and throws the structure away.  The
// aggregation tree of Section 5.1, however, already stores *partial*
// aggregate states per node — exactly the shape needed to answer point
// and range queries and to absorb new tuples without a rebuild.  This
// module keeps one internal::SplitTree resident behind a SnapshotGate:
//
//   * Insert(period, input)    — O(depth) amortized, same as one batch
//                                insertion; the tree only ever grows
//                                (no §5.3 garbage collection: a serving
//                                index must answer about the whole past);
//   * AggregateAt(t)           — descend ONE root path combining the
//                                partial states, O(depth), allocation-free;
//   * AggregateOver(period)    — walk the canonical cover of the query
//                                range (subtrees disjoint from the range
//                                are pruned at their topmost node),
//                                emitting the coalesced constant-interval
//                                series, O(depth + answer);
//   * FoldOver(period)         — same walk, but the per-interval states
//                                are folded into a single value with the
//                                monoid Combine.
//
// FoldOver semantics: the fold is over the *constant-interval series*,
// one Combine per interval.  For the idempotent monoids (MIN, MAX) this
// is the true range aggregate — "the maximum salary at any instant in
// [a, b]".  For the additive monoids (COUNT, SUM, AVG) a tuple spanning
// several constant intervals contributes once per interval, so the fold
// answers "the sum over the series", not "the sum over distinct tuples";
// callers wanting per-tuple semantics should consume the series.
//
// Concurrency: one writer and any number of readers may run against the
// index simultaneously; every reader observes a consistent epoch-stamped
// snapshot.  Two engines implement that contract behind
// LiveIndexOptions::concurrency: the default copy-on-write split tree
// with epoch-based reclamation (live/cow_index.h — readers are lock-free
// and never block the writer) and the v1 shared_mutex SnapshotGate over
// an in-place tree (live/snapshot.h).  All five monoids of
// core/aggregates.h are supported, including AVG's (sum, count) pair.

#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/aggregation_tree.h"
#include "live/snapshot.h"
#include "obs/metrics.h"
#include "temporal/tuple.h"

namespace tagg {

namespace internal {

// Registry instruments shared by every live index, defined once in
// live_index.cc so the template methods below can publish without each
// instantiation re-resolving the name.
obs::Histogram& LiveProbeSeconds();
obs::Counter& LiveInsertsTotal();
obs::Counter& LiveProbesTotal();

}  // namespace internal

/// Which concurrency engine serves a live index.
enum class LiveConcurrency : uint8_t {
  /// Copy-on-write split tree with epoch-based reclamation
  /// (live/cow_index.h): inserts path-copy O(depth) nodes and publish an
  /// immutable root with one atomic swap; readers pin a version through
  /// EpochGate and walk it lock-free.  The default serving engine.
  kCowEpoch,
  /// The v1 std::shared_mutex SnapshotGate over an in-place tree
  /// (live/snapshot.h).  Kept selectable so the differential harness can
  /// diff the two engines tuple-for-tuple and as the fallback if the COW
  /// engine ever misbehaves in the field.
  kSharedLock,
};

std::string_view LiveConcurrencyToString(LiveConcurrency concurrency);

/// What a live index aggregates and how it serves.
struct LiveIndexOptions {
  AggregateKind aggregate = AggregateKind::kCount;
  /// Index of the aggregated attribute in the tuples passed to
  /// InsertTuple(); AggregateOptions::kNoAttribute for COUNT(*).
  size_t attribute = AggregateOptions::kNoAttribute;
  LiveConcurrency concurrency = LiveConcurrency::kCowEpoch;
  /// COW engine only: publish a new version every N single-tuple
  /// Insert()/InsertTuple() calls instead of per call, amortizing the
  /// O(depth) path copy over the batch (unpublished tuples are invisible
  /// to readers until the next publish or Flush()).  0 behaves as 1.
  /// InsertBatch() always publishes once per call regardless.
  size_t publish_every_n = 1;
};

/// A point-in-time view of a live index's counters.
struct LiveIndexStats {
  /// Published version: the number of tuples the index has seen (absorbed
  /// or skipped as NULL).  Comparing this against the backing relation's
  /// size tells whether the index is fresh.
  uint64_t epoch = 0;
  /// Tuples actually folded into the tree (NULL inputs are seen but
  /// skipped, matching the batch path's SQL NULL semantics).
  uint64_t inserts_absorbed = 0;
  /// Point, range, and fold queries answered since construction.
  uint64_t queries_served = 0;
  /// Seconds since the current version was published (data staleness as
  /// observed by a reader arriving now).
  double snapshot_age_seconds = 0.0;
  size_t tree_depth = 0;
  size_t live_nodes = 0;
  /// Actual resident bytes of the tree's nodes, plus the paper's
  /// 16-bytes-per-node accounting of the same count (Section 6.2) for
  /// comparison with the batch algorithms' memory study.
  size_t live_bytes = 0;
  size_t paper_bytes = 0;
  /// COW engine: immutable tree versions published so far (equals epoch
  /// when publish_every_n == 1; the locked engine reports its epoch).
  uint64_t versions_published = 0;
  /// COW engine: path-copied nodes retired but not yet recycled (they
  /// drain to 0 after readers quiesce and the next publish reclaims).
  size_t retired_pending = 0;
  uint64_t nodes_retired = 0;
  uint64_t nodes_reclaimed = 0;

  std::string ToString() const;
};

/// Type-erased handle to a live temporal aggregate index.  Obtain one
/// from Create(); the concrete monoid is chosen by options.aggregate.
class LiveAggregateIndex {
 public:
  virtual ~LiveAggregateIndex() = default;

  /// Builds an empty index.  Fails when a value aggregate (SUM/MIN/MAX/
  /// AVG) is requested without an attribute.
  static Result<std::unique_ptr<LiveAggregateIndex>> Create(
      const LiveIndexOptions& options);

  const LiveIndexOptions& options() const { return options_; }

  // --- writer API (exclusive section per call) -------------------------

  /// Folds one (validity, input) pair into the index and publishes the
  /// new version.
  virtual Status Insert(const Period& valid, double input) = 0;

  /// Extracts the configured attribute from `tuple` and inserts.  NULL
  /// attribute values advance the epoch without contributing (SQL
  /// aggregate semantics; COUNT(attr) counts only non-null values).
  Status InsertTuple(const Tuple& tuple);

  /// Folds a batch of (validity, input) pairs under ONE writer section /
  /// ONE published version: bulk ingest amortizes per-call overhead (the
  /// COW engine's path copies, the locked engine's lock round-trips) to
  /// near the in-place cost.  The default loops over Insert().
  virtual Status InsertBatch(
      const std::vector<std::pair<Period, double>>& batch);

  /// InsertTuple over a whole batch: extracts the configured attribute
  /// from every tuple, folds the non-NULL ones under one published
  /// version via InsertBatch, and advances the epoch for NULLs exactly
  /// like InsertTuple.  The network serving layer's InsertBatch op lands
  /// here so remote bulk ingest gets the same amortization as local.
  Status InsertTuples(const std::vector<Tuple>& tuples);

  /// Publishes any inserts a publish_every_n > 1 configuration is still
  /// holding back.  No-op when nothing is pending (and always for the
  /// locked engine, which publishes per call).
  virtual void Flush() {}

  // --- reader API (shared sections; any number of threads) -------------

  /// The aggregate's value at instant `t`: one root-path descent, O(depth).
  /// When `snapshot_epoch` is non-null it receives the epoch the answer
  /// was computed at.
  virtual Result<Value> AggregateAt(
      Instant t, uint64_t* snapshot_epoch = nullptr) const = 0;

  /// The constant-interval series restricted to `query`, in time order,
  /// exactly covering the query period.  `coalesce` merges adjacent
  /// value-equal intervals (TSQL2 coalescing) before returning.
  virtual Result<AggregateSeries> AggregateOver(
      const Period& query, bool coalesce = true,
      uint64_t* snapshot_epoch = nullptr) const = 0;

  /// The monoid fold of the constant-interval series over `query` (see
  /// the file comment for the per-monoid semantics).
  virtual Result<Value> FoldOver(
      const Period& query, uint64_t* snapshot_epoch = nullptr) const = 0;

  /// Lock-free peek at the published epoch (= tuples seen).  Freshness
  /// checks compare this against the backing relation's size.
  virtual uint64_t epoch() const = 0;

  virtual LiveIndexStats Stats() const = 0;

 protected:
  explicit LiveAggregateIndex(const LiveIndexOptions& options)
      : options_(options) {}

  /// Advances the epoch without folding anything (NULL input seen).
  virtual void NoteSkippedTuple() = 0;

 private:
  LiveIndexOptions options_;
};

namespace internal {

/// Upper bound worth reserving for a range query's interval vector: the
/// tree's leaf-count bound clamped by the number of instants in the query
/// (an emitted interval covers at least one instant), so point-ish probes
/// stop pre-allocating megabytes for answers of a handful of rows.
inline size_t SeriesReserveBound(size_t live_nodes, const Period& query) {
  const size_t leaf_bound = live_nodes / 2 + 1;
  // Closed interval: end >= start and both lie in [kOrigin, kForever], so
  // the width fits in uint64 without overflow.
  const uint64_t width = static_cast<uint64_t>(query.end()) -
                         static_cast<uint64_t>(query.start()) + 1;
  return width < static_cast<uint64_t>(leaf_bound)
             ? static_cast<size_t>(width)
             : leaf_bound;
}

/// The locked v1 engine for one monoid: a SplitTree mutated in place
/// behind a SnapshotGate (live/snapshot.h).  The default serving engine
/// is the copy-on-write one (live/cow_index.h); this one stays for
/// differential comparison and as the fallback.
template <typename Op>
class LiveIndexImpl final : public LiveAggregateIndex {
 public:
  using State = typename Op::State;
  using Tree = SplitTree<Op>;
  using Node = typename Tree::Node;

  explicit LiveIndexImpl(const LiveIndexOptions& options, Op op = Op())
      : LiveAggregateIndex(options), tree_(std::move(op)) {}

  Status Insert(const Period& valid, double input) override {
    auto ticket = gate_.EnterWriter();
    tree_.Add(valid.start(), valid.end(), input);
    ++inserts_absorbed_;
    LiveInsertsTotal().Increment();
    return Status::OK();
  }

  Status InsertBatch(
      const std::vector<std::pair<Period, double>>& batch) override {
    if (batch.empty()) return Status::OK();
    auto ticket = gate_.EnterWriter();
    // The epoch counts tuples seen, not writer sections: one ticket
    // publishes the whole batch.
    ticket.AdvanceExtra(batch.size() - 1);
    for (const auto& [valid, input] : batch) {
      tree_.Add(valid.start(), valid.end(), input);
      ++inserts_absorbed_;
    }
    LiveInsertsTotal().Increment(batch.size());
    return Status::OK();
  }

  Result<Value> AggregateAt(Instant t,
                            uint64_t* snapshot_epoch) const override {
    if (t < kOrigin || t > kForever) {
      return Status::InvalidArgument("instant " + std::to_string(t) +
                                     " outside the time-line");
    }
    obs::ScopedLatencyTimer probe_timer(LiveProbeSeconds());
    LiveProbesTotal().Increment();
    auto snapshot = gate_.EnterReader();
    if (snapshot_epoch != nullptr) *snapshot_epoch = snapshot.epoch();
    queries_served_.fetch_add(1, std::memory_order_relaxed);
    return Op::Finalize(DescendCombineAt(tree_.op, tree_.root, t));
  }

  Result<AggregateSeries> AggregateOver(
      const Period& query, bool coalesce,
      uint64_t* snapshot_epoch) const override {
    obs::ScopedLatencyTimer probe_timer(LiveProbeSeconds());
    LiveProbesTotal().Increment();
    AggregateSeries series;
    {
      auto snapshot = gate_.EnterReader();
      if (snapshot_epoch != nullptr) *snapshot_epoch = snapshot.epoch();
      queries_served_.fetch_add(1, std::memory_order_relaxed);
      // Leaves = (nodes + 1) / 2 bounds the emitted interval count; for
      // wide queries the reserve saves a dozen reallocations of a
      // hundreds-of-thousands-element vector, while the query-width clamp
      // keeps point-ish probes from pre-allocating megabytes.
      series.intervals.reserve(
          SeriesReserveBound(tree_.arena.live_nodes(), query));
      WalkRange(query, [&](Instant lo, Instant hi, const State& st) {
        series.intervals.push_back({Period(lo, hi), Op::Finalize(st)});
      });
      series.stats.tuples_processed = inserts_absorbed_;
      series.stats.peak_live_nodes = tree_.arena.live_nodes();
      series.stats.peak_live_bytes = tree_.arena.live_bytes();
      series.stats.peak_paper_bytes =
          tree_.arena.live_nodes() * kPaperNodeBytes;
      series.stats.nodes_allocated = tree_.arena.total_allocated_nodes();
    }
    if (coalesce) {
      series.intervals = CoalesceEqualValues(std::move(series.intervals));
    }
    series.stats.intervals_emitted = series.intervals.size();
    return series;
  }

  Result<Value> FoldOver(const Period& query,
                         uint64_t* snapshot_epoch) const override {
    obs::ScopedLatencyTimer probe_timer(LiveProbeSeconds());
    LiveProbesTotal().Increment();
    auto snapshot = gate_.EnterReader();
    if (snapshot_epoch != nullptr) *snapshot_epoch = snapshot.epoch();
    queries_served_.fetch_add(1, std::memory_order_relaxed);
    State acc = tree_.op.Identity();
    WalkRange(query, [&](Instant, Instant, const State& st) {
      acc = tree_.op.Combine(acc, st);
    });
    return Op::Finalize(acc);
  }

  uint64_t epoch() const override { return gate_.epoch(); }

  LiveIndexStats Stats() const override {
    auto snapshot = gate_.EnterReader();
    LiveIndexStats stats;
    stats.epoch = snapshot.epoch();
    stats.inserts_absorbed = inserts_absorbed_;
    stats.queries_served = queries_served_.load(std::memory_order_relaxed);
    stats.snapshot_age_seconds = snapshot.age_seconds();
    // tracked_depth is maintained on the insert path and exact for this
    // grow-only tree; the old tree_.Depth() walked all O(n) nodes while
    // holding the reader section.
    stats.tree_depth = tree_.tracked_depth;
    stats.live_nodes = tree_.arena.live_nodes();
    stats.live_bytes = tree_.arena.live_bytes();
    stats.paper_bytes = tree_.arena.live_nodes() * kPaperNodeBytes;
    stats.versions_published = stats.epoch;
    return stats;
  }

 protected:
  void NoteSkippedTuple() override {
    auto ticket = gate_.EnterWriter();
    // Publishing an otherwise-unchanged tree still advances the epoch:
    // the skipped tuple is now accounted for in the index's view of the
    // relation.
  }

 private:
  /// Range walk via the shared const-correct helper (the SplitTree
  /// scratch stacks are writer-owned and must not be touched by
  /// concurrent readers; WalkTreeRange uses a function-local stack).
  template <typename EmitFn>
  void WalkRange(const Period& query, EmitFn&& emit) const {
    WalkTreeRange(tree_.op, tree_.root, tree_.lo, query,
                  std::forward<EmitFn>(emit));
  }

  mutable SnapshotGate gate_;
  Tree tree_;
  uint64_t inserts_absorbed_ = 0;  // guarded by gate_'s writer section
  mutable std::atomic<uint64_t> queries_served_{0};
};

}  // namespace internal

}  // namespace tagg
