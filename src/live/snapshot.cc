#include "live/snapshot.h"

#include <thread>

namespace tagg {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SnapshotGate::SnapshotGate() : published_at_ns_(NowNs()) {}

SnapshotGate::ReadSnapshot::ReadSnapshot(SnapshotGate& gate) {
  // Writer preference: glibc's rwlock admits new readers while a writer
  // waits, so a spinning reader pool can starve the single ingest thread
  // for milliseconds per insert.  Readers therefore stand aside while a
  // writer is queued; writer sections are O(tree depth), so the pause is
  // microscopic.
  while (gate.writers_waiting_.load(std::memory_order_acquire) > 0) {
    std::this_thread::yield();
  }
  lock_ = std::shared_lock<std::shared_mutex>(gate.mutex_);
  // Under the shared lock no writer can publish, so epoch and publication
  // time describe exactly the version this reader will traverse.
  epoch_ = gate.epoch_.load(std::memory_order_acquire);
  const int64_t published =
      gate.published_at_ns_.load(std::memory_order_acquire);
  age_seconds_ = static_cast<double>(NowNs() - published) * 1e-9;
  if (age_seconds_ < 0.0) age_seconds_ = 0.0;
}

SnapshotGate::WriteTicket::WriteTicket(SnapshotGate& gate) : gate_(gate) {
  gate.writers_waiting_.fetch_add(1, std::memory_order_acq_rel);
  lock_ = std::unique_lock<std::shared_mutex>(gate.mutex_);
  gate.writers_waiting_.fetch_sub(1, std::memory_order_acq_rel);
  publishing_epoch_ = gate.epoch_.load(std::memory_order_relaxed) + 1;
}

SnapshotGate::WriteTicket::~WriteTicket() {
  // Publish while still holding the exclusive lock: readers entering after
  // the unlock observe the new epoch together with the mutated structure.
  gate_.published_at_ns_.store(NowNs(), std::memory_order_release);
  gate_.epoch_.store(publishing_epoch_, std::memory_order_release);
}

SnapshotGate::ReadSnapshot SnapshotGate::EnterReader() const {
  return ReadSnapshot(const_cast<SnapshotGate&>(*this));
}

SnapshotGate::WriteTicket SnapshotGate::EnterWriter() {
  return WriteTicket(*this);
}

double SnapshotGate::SnapshotAgeSeconds() const {
  const double age =
      static_cast<double>(
          NowNs() - published_at_ns_.load(std::memory_order_acquire)) *
      1e-9;
  return age < 0.0 ? 0.0 : age;
}

}  // namespace tagg
