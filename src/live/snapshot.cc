#include "live/snapshot.h"

#include <thread>

#include "obs/metrics.h"

namespace tagg {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

obs::Histogram& ReaderWaitSeconds() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "tagg_live_reader_wait_seconds",
      "Time a reader spent entering its shared section (yield loop + "
      "shared-lock acquisition)");
  return h;
}

obs::Histogram& WriterWaitSeconds() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "tagg_live_writer_wait_seconds",
      "Time a writer spent acquiring the exclusive lock");
  return h;
}

obs::Gauge& SnapshotAgeGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "tagg_live_snapshot_age_seconds",
      "Staleness of the published version as observed by the most recent "
      "reader");
  return g;
}

obs::Gauge& EpochGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "tagg_live_published_epoch",
      "Latest epoch published through any SnapshotGate");
  return g;
}

}  // namespace

SnapshotGate::SnapshotGate() : published_at_ns_(NowNs()) {}

SnapshotGate::ReadSnapshot::ReadSnapshot(SnapshotGate& gate) {
  const bool instrument = obs::Enabled();
  const int64_t wait_begin = instrument ? NowNs() : 0;
  // Writer preference: glibc's rwlock admits new readers while a writer
  // waits, so a spinning reader pool can starve the single ingest thread
  // for milliseconds per insert.  Readers therefore stand aside while a
  // writer is queued; writer sections are O(tree depth), so the pause is
  // microscopic.
  while (gate.writers_waiting_.load(std::memory_order_acquire) > 0) {
    std::this_thread::yield();
  }
  lock_ = std::shared_lock<std::shared_mutex>(gate.mutex_);
  if (instrument) {
    ReaderWaitSeconds().Observe(static_cast<double>(NowNs() - wait_begin) *
                                1e-9);
  }
  // Under the shared lock no writer can publish, so epoch and publication
  // time describe exactly the version this reader will traverse.
  epoch_ = gate.epoch_.load(std::memory_order_acquire);
  const int64_t published =
      gate.published_at_ns_.load(std::memory_order_acquire);
  age_seconds_ = static_cast<double>(NowNs() - published) * 1e-9;
  if (age_seconds_ < 0.0) age_seconds_ = 0.0;
  if (instrument) SnapshotAgeGauge().Set(age_seconds_);
}

SnapshotGate::WriteTicket::WriteTicket(SnapshotGate& gate) : gate_(gate) {
  const bool instrument = obs::Enabled();
  const int64_t wait_begin = instrument ? NowNs() : 0;
  gate.writers_waiting_.fetch_add(1, std::memory_order_acq_rel);
  lock_ = std::unique_lock<std::shared_mutex>(gate.mutex_);
  gate.writers_waiting_.fetch_sub(1, std::memory_order_acq_rel);
  if (instrument) {
    WriterWaitSeconds().Observe(static_cast<double>(NowNs() - wait_begin) *
                                1e-9);
  }
  publishing_epoch_ = gate.epoch_.load(std::memory_order_relaxed) + 1;
}

SnapshotGate::WriteTicket::~WriteTicket() {
  // Publish while still holding the exclusive lock: readers entering after
  // the unlock observe the new epoch together with the mutated structure.
  gate_.published_at_ns_.store(NowNs(), std::memory_order_release);
  gate_.epoch_.store(publishing_epoch_, std::memory_order_release);
  if (obs::Enabled()) {
    EpochGauge().Set(static_cast<double>(publishing_epoch_));
  }
}

SnapshotGate::ReadSnapshot SnapshotGate::EnterReader() const {
  return ReadSnapshot(const_cast<SnapshotGate&>(*this));
}

SnapshotGate::WriteTicket SnapshotGate::EnterWriter() {
  return WriteTicket(*this);
}

double SnapshotGate::SnapshotAgeSeconds() const {
  const double age =
      static_cast<double>(
          NowNs() - published_at_ns_.load(std::memory_order_acquire)) *
      1e-9;
  return age < 0.0 ? 0.0 : age;
}

}  // namespace tagg
