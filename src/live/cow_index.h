// Copy-on-write live index engine: lock-free snapshot reads.
//
// The v1 engine (live/live_index.h + live/snapshot.h) mutates one
// SplitTree in place behind a shared_mutex, so every probe pays a lock
// round-trip and readers stall whenever the ingest thread holds the
// writer section.  This engine removes the lock from the read path
// entirely, keeping Section 5.1 semantics unchanged:
//
//   * Nodes are immutable once published.  An insert *path-copies* the
//     O(depth) root-to-boundary nodes it would have mutated (the standard
//     segment-tree argument: at most two nodes per level are partially
//     overlapped) into fresh arena nodes tagged with the version being
//     built, and leaves every untouched subtree shared with the previous
//     version.
//   * Publication is ONE atomic pointer swap: the writer stores an
//     immutable VersionRecord (root + epoch + stats snapshot, so readers
//     never touch writer-side counters) and then advances the EpochGate
//     version counter.  Everything a reader needs is reachable from the
//     record with plain loads.
//   * Readers pin a version through EpochGate (live/epoch.h): one
//     slot-CAS and one seq_cst confirm to enter, one release store to
//     leave, ZERO atomics in the descent loop.  No shared_ptr per-node
//     refcounting — nodes stay four words + a version tag, and the
//     paper's 16-bytes-per-node accounting still applies unchanged.
//   * Replaced nodes are retired into per-version lists in the NodeArena
//     and recycled in batches once EpochGate::MinActiveVersion() proves
//     no pinned reader can still observe them.  Memory is bounded:
//     pending retirees drain as readers churn, and a Flush() on an idle
//     index returns them all.
//
// Writer-side batching: publishing per insert makes every insert pay the
// full O(depth) path copy.  InsertBatch() and the publish_every_n option
// amortize it — inserts between publishes find most of their path
// already tagged with the building version (the first insert copied it)
// and mutate those private nodes in place, so bulk ingest approaches the
// in-place engine's cost while readers still only ever see complete
// batches.
//
// Single writer at a time (an internal mutex serializes writers, same
// contract as SnapshotGate); any number of readers.  Destruction requires
// all readers drained, as before.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "core/aggregation_tree.h"
#include "core/node_arena.h"
#include "live/epoch.h"
#include "live/live_index.h"

namespace tagg {
namespace internal {

inline int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The copy-on-write engine for one monoid.
template <typename Op>
class CowLiveIndexImpl final : public LiveAggregateIndex {
 public:
  using State = typename Op::State;
  using Input = typename Op::Input;

  /// Same layout as SplitTree::Node plus the version tag that tells the
  /// writer whether a node is private to the version being built (then it
  /// may be mutated in place) or shared with a published version (then it
  /// must be copied).  Readers never look at `version`.
  struct Node {
    Instant split;
    State state;
    Node* left;
    Node* right;
    uint64_t version;

    bool IsLeaf() const { return left == nullptr; }
  };

  explicit CowLiveIndexImpl(const LiveIndexOptions& options, Op op = Op())
      : LiveAggregateIndex(options),
        op_(std::move(op)),
        publish_every_(options.publish_every_n == 0
                           ? 1
                           : options.publish_every_n),
        node_arena_(sizeof(Node)),
        record_arena_(sizeof(VersionRecord)) {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    working_root_ = NewLeaf();
    PublishLocked();  // version 1: the empty tree, before any reader
  }

  // --- writer API ------------------------------------------------------

  Status Insert(const Period& valid, double input) override {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    AddLocked(valid.start(), valid.end(), input);
    ++tuples_seen_;
    ++inserts_absorbed_;
    ++pending_;
    LiveInsertsTotal().Increment();
    if (pending_ >= publish_every_) PublishLocked();
    return Status::OK();
  }

  Status InsertBatch(
      const std::vector<std::pair<Period, double>>& batch) override {
    if (batch.empty()) return Status::OK();
    std::lock_guard<std::mutex> lock(writer_mutex_);
    for (const auto& [valid, input] : batch) {
      AddLocked(valid.start(), valid.end(), input);
    }
    tuples_seen_ += batch.size();
    inserts_absorbed_ += batch.size();
    pending_ += batch.size();
    LiveInsertsTotal().Increment(batch.size());
    PublishLocked();  // one version per batch, however large
    return Status::OK();
  }

  void Flush() override {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    if (pending_ > 0) {
      PublishLocked();
    } else {
      // Nothing to publish, but an explicit Flush on an idle index still
      // drains every retire list no reader can observe any more.
      ReclaimLocked();
      PublishStatCountersLocked();
    }
  }

  // --- reader API (lock-free) ------------------------------------------

  Result<Value> AggregateAt(Instant t,
                            uint64_t* snapshot_epoch) const override {
    if (t < kOrigin || t > kForever) {
      return Status::InvalidArgument("instant " + std::to_string(t) +
                                     " outside the time-line");
    }
    obs::ScopedLatencyTimer probe_timer(LiveProbeSeconds());
    LiveProbesTotal().Increment();
    queries_served_.fetch_add(1, std::memory_order_relaxed);
    EpochGate::Pin pin = gate_.EnterReader();
    const VersionRecord* rec = record_.load(std::memory_order_acquire);
    if (snapshot_epoch != nullptr) *snapshot_epoch = rec->tuples_seen;
    return Op::Finalize(DescendCombineAt(op_, rec->root, t));
  }

  Result<AggregateSeries> AggregateOver(
      const Period& query, bool coalesce,
      uint64_t* snapshot_epoch) const override {
    obs::ScopedLatencyTimer probe_timer(LiveProbeSeconds());
    LiveProbesTotal().Increment();
    queries_served_.fetch_add(1, std::memory_order_relaxed);
    AggregateSeries series;
    {
      EpochGate::Pin pin = gate_.EnterReader();
      const VersionRecord* rec = record_.load(std::memory_order_acquire);
      if (snapshot_epoch != nullptr) *snapshot_epoch = rec->tuples_seen;
      series.intervals.reserve(SeriesReserveBound(rec->live_nodes, query));
      WalkTreeRange(op_, rec->root, kOrigin, query,
                    [&](Instant lo, Instant hi, const State& st) {
                      series.intervals.push_back(
                          {Period(lo, hi), Op::Finalize(st)});
                    });
      series.stats.tuples_processed = rec->inserts_absorbed;
      series.stats.peak_live_nodes = rec->live_nodes;
      series.stats.peak_live_bytes = rec->live_bytes;
      series.stats.peak_paper_bytes = rec->live_nodes * kPaperNodeBytes;
      series.stats.nodes_allocated = rec->total_allocated;
      series.stats.tree_depth = rec->depth;
    }
    if (coalesce) {
      series.intervals = CoalesceEqualValues(std::move(series.intervals));
    }
    series.stats.intervals_emitted = series.intervals.size();
    return series;
  }

  Result<Value> FoldOver(const Period& query,
                         uint64_t* snapshot_epoch) const override {
    obs::ScopedLatencyTimer probe_timer(LiveProbeSeconds());
    LiveProbesTotal().Increment();
    queries_served_.fetch_add(1, std::memory_order_relaxed);
    EpochGate::Pin pin = gate_.EnterReader();
    const VersionRecord* rec = record_.load(std::memory_order_acquire);
    if (snapshot_epoch != nullptr) *snapshot_epoch = rec->tuples_seen;
    State acc = op_.Identity();
    WalkTreeRange(op_, rec->root, kOrigin, query,
                  [&](Instant, Instant, const State& st) {
                    acc = op_.Combine(acc, st);
                  });
    return Op::Finalize(acc);
  }

  uint64_t epoch() const override {
    return published_tuples_.load(std::memory_order_acquire);
  }

  LiveIndexStats Stats() const override {
    LiveIndexStats stats;
    EpochGate::Pin pin = gate_.EnterReader();
    const VersionRecord* rec = record_.load(std::memory_order_acquire);
    stats.epoch = rec->tuples_seen;
    stats.inserts_absorbed = rec->inserts_absorbed;
    stats.queries_served = queries_served_.load(std::memory_order_relaxed);
    const double age =
        static_cast<double>(SteadyNowNs() - rec->published_at_ns) * 1e-9;
    stats.snapshot_age_seconds = age < 0.0 ? 0.0 : age;
    stats.tree_depth = rec->depth;
    stats.live_nodes = rec->live_nodes;
    stats.live_bytes = rec->live_bytes;
    stats.paper_bytes = rec->live_nodes * kPaperNodeBytes;
    stats.versions_published = rec->version;
    stats.retired_pending =
        retired_pending_stat_.load(std::memory_order_relaxed);
    stats.nodes_retired =
        nodes_retired_stat_.load(std::memory_order_relaxed);
    stats.nodes_reclaimed =
        nodes_reclaimed_stat_.load(std::memory_order_relaxed);
    return stats;
  }

 protected:
  void NoteSkippedTuple() override {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    // The epoch (tuples seen) advances with an unchanged tree: the
    // skipped tuple is now accounted for in the index's view.
    ++tuples_seen_;
    ++pending_;
    if (pending_ >= publish_every_) PublishLocked();
  }

 private:
  /// Everything one published version hands its readers, immutable after
  /// the record_ store: the root plus the stats snapshot, so reader-side
  /// Stats()/series stats never race writer-side counters.
  struct VersionRecord {
    const Node* root;
    uint64_t version;
    uint64_t tuples_seen;
    uint64_t inserts_absorbed;
    int64_t published_at_ns;
    size_t live_nodes;
    size_t live_bytes;
    size_t total_allocated;
    size_t depth;
  };

  struct AddFrame {
    Node* n;  // already private to the building version
    Instant lo;
    Instant hi;
    size_t depth;
  };

  Node* NewLeaf() {
    Node* n = static_cast<Node*>(node_arena_.Allocate());
    n->split = 0;
    n->state = op_.Identity();
    n->left = nullptr;
    n->right = nullptr;
    n->version = building_version_;
    return n;
  }

  /// A node the writer may mutate: `n` itself when it was created for the
  /// version being built, otherwise a fresh copy (the shared original is
  /// retired — unreachable from the new version on, recycled once no
  /// pinned reader can observe it).
  Node* Own(Node* n) {
    if (n->version == building_version_) return n;
    Node* copy = static_cast<Node*>(node_arena_.Allocate());
    *copy = *n;
    copy->version = building_version_;
    node_arena_.Retire(n, building_version_);
    return copy;
  }

  /// SplitTree::Add with path-copying: identical descent and split rules
  /// (Section 5.1), but every node about to be touched is Own()ed first,
  /// so published versions stay immutable.
  void AddLocked(Instant s, Instant e, Input input) {
    working_root_ = Own(working_root_);
    add_stack_.clear();
    add_stack_.push_back({working_root_, kOrigin, kForever, 1});
    while (!add_stack_.empty()) {
      const AddFrame f = add_stack_.back();
      add_stack_.pop_back();
      const Instant cs = s > f.lo ? s : f.lo;
      const Instant ce = e < f.hi ? e : f.hi;
      if (cs == f.lo && ce == f.hi) {
        // Completely overlapped: absorb into the private copy and stop.
        op_.Add(f.n->state, input);
        continue;
      }
      if (f.n->IsLeaf()) {
        // Partially overlapped leaf: split.  Both fresh children are
        // private by construction.
        f.n->split = (cs > f.lo) ? cs - 1 : ce;
        f.n->left = NewLeaf();
        f.n->right = NewLeaf();
        if (f.depth + 1 > depth_) depth_ = f.depth + 1;
      }
      if (cs <= f.n->split) {
        f.n->left = Own(f.n->left);
        add_stack_.push_back({f.n->left, f.lo, f.n->split, f.depth + 1});
      }
      if (ce > f.n->split) {
        f.n->right = Own(f.n->right);
        add_stack_.push_back(
            {f.n->right, f.n->split + 1, f.hi, f.depth + 1});
      }
    }
  }

  void PublishLocked() {
    // Reclaim first so the record's counters describe the post-reclaim
    // state (and the publish that follows never frees anything a reader
    // of the *current* version could hold: lists tagged with the building
    // version are above MinActiveVersion until after the publish).
    ReclaimLocked();
    auto* rec = static_cast<VersionRecord*>(record_arena_.Allocate());
    rec->root = working_root_;
    rec->version = building_version_;
    rec->tuples_seen = tuples_seen_;
    rec->inserts_absorbed = inserts_absorbed_;
    rec->published_at_ns = SteadyNowNs();
    rec->live_nodes =
        node_arena_.live_nodes() - node_arena_.retired_pending();
    rec->live_bytes = rec->live_nodes * node_arena_.slot_size();
    rec->total_allocated = node_arena_.total_allocated_nodes();
    rec->depth = depth_;
    const VersionRecord* old = record_.load(std::memory_order_relaxed);
    // Publication: record first (release), then the version counter
    // (seq_cst, inside Publish) — a reader announcing the new version is
    // thereby guaranteed to load at least this record.
    record_.store(rec, std::memory_order_release);
    published_tuples_.store(tuples_seen_, std::memory_order_release);
    const uint64_t published = gate_.Publish();
    if (old != nullptr) {
      record_arena_.Retire(const_cast<VersionRecord*>(old), published);
    }
    building_version_ = published + 1;
    pending_ = 0;
    PublishStatCountersLocked();
  }

  void ReclaimLocked() {
    const uint64_t min_active = gate_.MinActiveVersion();
    node_arena_.ReclaimThrough(min_active);
    record_arena_.ReclaimThrough(min_active);
  }

  /// Mirrors the arenas' retire counters into reader-visible atomics and
  /// the global obs instruments (deltas batched per publish, keeping the
  /// per-node retire path free of shared-counter traffic).
  void PublishStatCountersLocked() {
    const uint64_t retired =
        node_arena_.retired_total() + record_arena_.retired_total();
    const uint64_t reclaimed =
        node_arena_.reclaimed_total() + record_arena_.reclaimed_total();
    LiveNodesRetiredTotal().Increment(retired - obs_retired_reported_);
    LiveNodesReclaimedTotal().Increment(reclaimed -
                                        obs_reclaimed_reported_);
    obs_retired_reported_ = retired;
    obs_reclaimed_reported_ = reclaimed;
    if (obs::Enabled()) {
      LiveRetiredPendingGauge().Set(static_cast<double>(
          node_arena_.retired_pending() + record_arena_.retired_pending()));
    }
    retired_pending_stat_.store(node_arena_.retired_pending(),
                                std::memory_order_relaxed);
    nodes_retired_stat_.store(node_arena_.retired_total(),
                              std::memory_order_relaxed);
    nodes_reclaimed_stat_.store(node_arena_.reclaimed_total(),
                                std::memory_order_relaxed);
  }

  Op op_;

  // --- writer state (guarded by writer_mutex_) -------------------------
  mutable std::mutex writer_mutex_;
  const size_t publish_every_;
  NodeArena node_arena_;
  NodeArena record_arena_;
  Node* working_root_ = nullptr;
  /// The version the next publish will carry; nodes tagged with it are
  /// private to the writer.  Starts at 1 (EpochGate::kIdle is 0).
  uint64_t building_version_ = 1;
  uint64_t tuples_seen_ = 0;
  uint64_t inserts_absorbed_ = 0;
  uint64_t pending_ = 0;
  size_t depth_ = 1;
  uint64_t obs_retired_reported_ = 0;
  uint64_t obs_reclaimed_reported_ = 0;
  std::vector<AddFrame> add_stack_;  // writer scratch, reused per insert

  // --- publication point and reader-visible state ----------------------
  EpochGate gate_;
  std::atomic<const VersionRecord*> record_{nullptr};
  /// Lock-free epoch() peek (the record itself must only be dereferenced
  /// under a pin).
  std::atomic<uint64_t> published_tuples_{0};
  mutable std::atomic<uint64_t> queries_served_{0};
  std::atomic<size_t> retired_pending_stat_{0};
  std::atomic<uint64_t> nodes_retired_stat_{0};
  std::atomic<uint64_t> nodes_reclaimed_stat_{0};
};

}  // namespace internal
}  // namespace tagg
