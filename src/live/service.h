// LiveService: the serving façade over live aggregate indexes.
//
// A service owns one LiveAggregateIndex per (relation, aggregate,
// attribute) registration.  Registration resolves the attribute against
// the relation's schema in the temporal/catalog, type-checks it exactly
// like the batch path, bulk-loads the relation's current contents, and
// from then on Ingest() keeps the relation and every index over it in
// step — so the query executor can route repeated aggregate queries to
// the resident tree instead of rebuilding one per query
// (ExecutorOptions::live_service).
//
// Threading model: the registry itself is mutex-protected; each index is
// single-writer/multi-reader safe (live/live_index.h).  Ingest() appends
// to the *relation* as well, and Relation is not a concurrent structure —
// run one ingest thread, and route concurrent reads through the live
// indexes (the executor's fallback path scans the relation and is only
// safe when no ingest is running).

#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "live/live_index.h"
#include "temporal/catalog.h"

namespace tagg {

/// Identity of one registered index.
struct LiveIndexKey {
  std::string relation;  // lowercased
  AggregateKind aggregate = AggregateKind::kCount;
  size_t attribute = AggregateOptions::kNoAttribute;

  bool operator<(const LiveIndexKey& other) const {
    if (relation != other.relation) return relation < other.relation;
    if (aggregate != other.aggregate) return aggregate < other.aggregate;
    return attribute < other.attribute;
  }

  /// "employed/COUNT(#1)"-style rendering.
  std::string ToString() const;
};

/// Service-wide counters plus the per-index stats snapshot.
struct LiveServiceStats {
  uint64_t tuples_ingested = 0;
  std::vector<std::pair<LiveIndexKey, LiveIndexStats>> indexes;

  std::string ToString() const;
};

/// Registry and ingest point for live aggregate indexes.
class LiveService {
 public:
  /// Registers a live index for `aggregate` over `attribute_name` of
  /// `relation_name` (empty attribute name = COUNT(*)).  Resolves and
  /// type-checks against the catalog, then bulk-loads every tuple the
  /// relation currently holds.  Fails on duplicates, unknown names, and
  /// non-numeric value aggregates.
  Status RegisterIndex(const Catalog& catalog, std::string_view relation_name,
                       AggregateKind aggregate,
                       std::string_view attribute_name = {});

  /// The index registered for (relation, aggregate, attribute), or
  /// nullptr.  The pointer stays valid for the service's lifetime —
  /// indexes are never dropped, only the whole service.
  const LiveAggregateIndex* Find(std::string_view relation_name,
                                 AggregateKind aggregate,
                                 size_t attribute) const;

  /// Appends `tuple` to the registered relation and folds it into every
  /// index over that relation, so index epochs stay equal to the
  /// relation's size.  Fails when no index was registered for the
  /// relation or the tuple does not match its schema.
  Status Ingest(std::string_view relation_name, Tuple tuple);

  /// Ingest for a whole batch under one registry section: every tuple is
  /// appended to the relation and the indexes absorb the batch through
  /// InsertTuples (one published version per index).  On a validation
  /// failure midway, the tuples already appended stay — the caller learns
  /// how many through `ingested`.  This is the network InsertBatch op's
  /// landing point.
  Status IngestBatch(std::string_view relation_name,
                     std::vector<Tuple> tuples, size_t* ingested = nullptr);

  /// Publishes any write-batched inserts held back by the indexes of
  /// `relation_name` (empty = every registered relation).  The serving
  /// layer calls this for the wire Flush op and once more during
  /// graceful drain so the last batch is visible before exit.
  Status Flush(std::string_view relation_name = {});

  /// All registrations, sorted.
  std::vector<LiveIndexKey> Keys() const;

  LiveServiceStats Stats() const;

 private:
  struct Entry {
    std::shared_ptr<Relation> relation;
    std::unique_ptr<LiveAggregateIndex> index;
  };

  mutable std::mutex mutex_;
  std::map<LiveIndexKey, Entry> entries_;
  uint64_t tuples_ingested_ = 0;
};

}  // namespace tagg
