// Epoch-based snapshot isolation for the live aggregate index.
//
// The live subsystem keeps one aggregation tree resident and mutates it in
// place while reader threads query it.  SnapshotGate is the publication
// point between the two sides:
//
//   * a writer enters an exclusive section, mutates the structure, and on
//     leaving *publishes* a new version: the epoch counter advances and
//     the publication time is recorded;
//   * readers enter shared sections; everything a reader observes inside
//     one section belongs to a single published epoch (the writer cannot
//     run concurrently), so every read is a consistent snapshot, stamped
//     with the epoch it saw.
//
// v1 synchronization is a std::shared_mutex with a versioned epoch handoff
// — simple, fair to the single-writer/many-reader shape the serving layer
// targets, and clean under ThreadSanitizer.  The RCU-style upgrade this
// comment once promised has since shipped as the default engine: a
// copy-on-write tree (live/cow_index.h) whose readers pin versions through
// EpochGate (live/epoch.h) and never block the writer.  SnapshotGate and
// the locked engine remain selectable via LiveIndexOptions::concurrency =
// LiveConcurrency::kSharedLock, as the differential-testing oracle for the
// COW engine and as the field fallback.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

namespace tagg {

/// Single-writer / multi-reader publication gate with epoch versioning.
/// Multiple concurrent writers are also safe (they serialize), but the
/// intended deployment is one ingest thread and many query threads.
class SnapshotGate {
 public:
  SnapshotGate();

  SnapshotGate(const SnapshotGate&) = delete;
  SnapshotGate& operator=(const SnapshotGate&) = delete;

  /// RAII shared section.  While alive, the structure behind the gate is
  /// frozen at `epoch()`.
  class ReadSnapshot {
   public:
    /// The version this reader is pinned to: the number of writer sections
    /// published before this snapshot was taken.
    uint64_t epoch() const { return epoch_; }

    /// Seconds between the pinned version's publication and the moment the
    /// snapshot was taken (how stale the served data is).
    double age_seconds() const { return age_seconds_; }

   private:
    friend class SnapshotGate;
    explicit ReadSnapshot(SnapshotGate& gate);

    std::shared_lock<std::shared_mutex> lock_;
    uint64_t epoch_;
    double age_seconds_;
  };

  /// RAII exclusive section.  Publication (epoch advance + timestamp)
  /// happens on destruction, after the mutation completed.
  class WriteTicket {
   public:
    ~WriteTicket();

    WriteTicket(const WriteTicket&) = delete;
    WriteTicket& operator=(const WriteTicket&) = delete;

    /// The epoch the mutation will publish as.
    uint64_t publishing_epoch() const { return publishing_epoch_; }

    /// Publishes `extra` additional epochs with this ticket.  Batch
    /// inserts use it so the epoch keeps counting tuples seen (one per
    /// tuple) while paying a single exclusive section.
    void AdvanceExtra(uint64_t extra) { publishing_epoch_ += extra; }

   private:
    friend class SnapshotGate;
    explicit WriteTicket(SnapshotGate& gate);

    SnapshotGate& gate_;
    std::unique_lock<std::shared_mutex> lock_;
    uint64_t publishing_epoch_;
  };

  /// Pins the current version for reading.
  ReadSnapshot EnterReader() const;

  /// Starts an exclusive mutation; publishes when the ticket is destroyed.
  WriteTicket EnterWriter();

  /// Lock-free peek at the latest published epoch (monitoring only — a
  /// reader that needs a *consistent* epoch must use EnterReader()).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Seconds since the latest version was published.
  double SnapshotAgeSeconds() const;

 private:
  using Clock = std::chrono::steady_clock;

  mutable std::shared_mutex mutex_;
  /// Writers queued for the exclusive lock.  New readers yield while this
  /// is non-zero: the default (reader-preferring) rwlock would otherwise
  /// let a busy reader pool starve the single ingest thread.
  std::atomic<uint32_t> writers_waiting_{0};
  std::atomic<uint64_t> epoch_{0};
  /// Publication time of the current epoch, as nanoseconds of the steady
  /// clock; atomic so SnapshotAgeSeconds() needs no lock.
  std::atomic<int64_t> published_at_ns_;
};

}  // namespace tagg
