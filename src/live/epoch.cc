#include "live/epoch.h"

#include <thread>

namespace tagg {

namespace internal {

obs::Counter& LiveVersionPinsTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_live_version_pins_total",
      "Reader pins taken against COW live-index versions");
  return c;
}

obs::Counter& LiveVersionsPublishedTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_live_versions_published_total",
      "Immutable tree versions published by COW live-index writers");
  return c;
}

obs::Counter& LiveNodesRetiredTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_live_nodes_retired_total",
      "Path-copied nodes retired by COW live-index writers");
  return c;
}

obs::Counter& LiveNodesReclaimedTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_live_nodes_reclaimed_total",
      "Retired COW live-index nodes recycled after reader drain");
  return c;
}

obs::Gauge& LiveRetiredPendingGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "tagg_live_retired_pending",
      "Retired COW live-index nodes awaiting reader drain (latest "
      "publishing index)");
  return g;
}

}  // namespace internal

namespace {

/// Distinct slot-probe origin per thread, so a steady reader pool spreads
/// over the slot array instead of all CASing slot 0.
size_t ThreadProbeOrigin() {
  static std::atomic<size_t> next{0};
  thread_local const size_t origin =
      next.fetch_add(1, std::memory_order_relaxed);
  return origin;
}

}  // namespace

EpochGate::Pin EpochGate::EnterReader() const {
  internal::LiveVersionPinsTotal().Increment();
  const size_t origin = ThreadProbeOrigin();
  for (size_t attempt = 0;; ++attempt) {
    std::atomic<uint64_t>& slot = slots_[(origin + attempt) % kSlots].v;
    uint64_t expected = kIdle;
    uint64_t v = version_.load(std::memory_order_seq_cst);
    if (slot.load(std::memory_order_relaxed) == kIdle &&
        slot.compare_exchange_strong(expected, v,
                                     std::memory_order_seq_cst)) {
      // Dekker handshake: our seq_cst announcement store, then a seq_cst
      // re-read of the version counter.  The writer publishes with a
      // seq_cst store, then scans slots.  In the seq_cst total order
      // either the writer sees our announcement, or we see its publish
      // here and re-announce the newer version; a stale announcement can
      // therefore never be missed by a reclamation scan.
      for (;;) {
        const uint64_t v2 = version_.load(std::memory_order_seq_cst);
        if (v2 == v) break;
        v = v2;
        slot.store(v, std::memory_order_seq_cst);
      }
      return Pin(&slot, v);
    }
    // All-slots-busy (> kSlots concurrent pins): read sections are short,
    // so yield and retry rather than growing the scan the writer pays.
    if (attempt > 0 && (attempt + 1) % kSlots == 0) {
      std::this_thread::yield();
    }
  }
}

uint64_t EpochGate::MinActiveVersion() const {
  uint64_t min = version_.load(std::memory_order_seq_cst);
  for (const Slot& s : slots_) {
    // Acquire: observing an idle slot (or a successor announcement in its
    // release sequence) orders that reader's node accesses before any
    // recycling the caller does with the returned minimum.
    const uint64_t v = s.v.load(std::memory_order_seq_cst);
    if (v != kIdle && v < min) min = v;
  }
  return min;
}

}  // namespace tagg
