#include "live/service.h"

#include "util/str.h"

namespace tagg {

std::string LiveIndexKey::ToString() const {
  std::string arg = attribute == AggregateOptions::kNoAttribute
                        ? "*"
                        : "#" + std::to_string(attribute);
  return relation + "/" + std::string(AggregateKindToString(aggregate)) +
         "(" + arg + ")";
}

std::string LiveServiceStats::ToString() const {
  std::string out = "live service: " + std::to_string(indexes.size()) +
                    " index(es), " + std::to_string(tuples_ingested) +
                    " tuple(s) ingested\n";
  for (const auto& [key, stats] : indexes) {
    out += "  " + key.ToString() + ": " + stats.ToString() + "\n";
  }
  return out;
}

Status LiveService::RegisterIndex(const Catalog& catalog,
                                  std::string_view relation_name,
                                  AggregateKind aggregate,
                                  std::string_view attribute_name) {
  TAGG_ASSIGN_OR_RETURN(std::shared_ptr<Relation> relation,
                        catalog.Get(relation_name));

  size_t attribute = AggregateOptions::kNoAttribute;
  if (!attribute_name.empty()) {
    const auto index = relation->schema().IndexOf(attribute_name);
    if (!index.has_value()) {
      return Status::NotFound("relation '" + relation->name() +
                              "' has no attribute '" +
                              std::string(attribute_name) + "'");
    }
    attribute = *index;
  }
  if (aggregate != AggregateKind::kCount) {
    if (attribute == AggregateOptions::kNoAttribute) {
      return Status::InvalidArgument(
          std::string(AggregateKindToString(aggregate)) +
          " live index requires an attribute to aggregate");
    }
    const ValueType type = relation->schema().attribute(attribute).type;
    if (type != ValueType::kInt && type != ValueType::kDouble) {
      return Status::NotSupported(
          std::string(AggregateKindToString(aggregate)) +
          " over non-numeric attribute '" +
          relation->schema().attribute(attribute).name + "'");
    }
  }

  LiveIndexKey key{ToLower(relation_name), aggregate, attribute};

  LiveIndexOptions options;
  options.aggregate = aggregate;
  options.attribute = attribute;
  TAGG_ASSIGN_OR_RETURN(std::unique_ptr<LiveAggregateIndex> index,
                        LiveAggregateIndex::Create(options));

  // Bulk-load outside the registry lock: the index is not yet published.
  for (const Tuple& t : *relation) {
    TAGG_RETURN_IF_ERROR(index->InsertTuple(t));
  }

  std::lock_guard<std::mutex> guard(mutex_);
  if (entries_.contains(key)) {
    return Status::AlreadyExists("live index " + key.ToString() +
                                 " already registered");
  }
  entries_.emplace(key, Entry{std::move(relation), std::move(index)});
  return Status::OK();
}

const LiveAggregateIndex* LiveService::Find(std::string_view relation_name,
                                            AggregateKind aggregate,
                                            size_t attribute) const {
  const LiveIndexKey key{ToLower(relation_name), aggregate, attribute};
  std::lock_guard<std::mutex> guard(mutex_);
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : it->second.index.get();
}

Status LiveService::Ingest(std::string_view relation_name, Tuple tuple) {
  const std::string lowered = ToLower(relation_name);
  std::lock_guard<std::mutex> guard(mutex_);

  // Collect every index over this relation; they share one Relation.
  std::shared_ptr<Relation> relation;
  std::vector<LiveAggregateIndex*> indexes;
  for (auto& [key, entry] : entries_) {
    if (key.relation != lowered) continue;
    relation = entry.relation;
    indexes.push_back(entry.index.get());
  }
  if (relation == nullptr) {
    return Status::NotFound("no live index registered for relation '" +
                            std::string(relation_name) + "'");
  }

  // Validate + append once; then fold into every index so their epochs
  // stay equal to the relation's size.
  TAGG_RETURN_IF_ERROR(relation->Append(tuple));
  for (LiveAggregateIndex* index : indexes) {
    TAGG_RETURN_IF_ERROR(index->InsertTuple(tuple));
  }
  ++tuples_ingested_;
  static obs::Counter& ingested = obs::MetricsRegistry::Global().GetCounter(
      "tagg_live_ingest_total",
      "Tuples ingested through LiveService (ingest rate source)");
  ingested.Increment();
  return Status::OK();
}

Status LiveService::IngestBatch(std::string_view relation_name,
                                std::vector<Tuple> tuples,
                                size_t* ingested) {
  if (ingested != nullptr) *ingested = 0;
  if (tuples.empty()) return Status::OK();
  const std::string lowered = ToLower(relation_name);
  std::lock_guard<std::mutex> guard(mutex_);

  std::shared_ptr<Relation> relation;
  std::vector<LiveAggregateIndex*> indexes;
  for (auto& [key, entry] : entries_) {
    if (key.relation != lowered) continue;
    relation = entry.relation;
    indexes.push_back(entry.index.get());
  }
  if (relation == nullptr) {
    return Status::NotFound("no live index registered for relation '" +
                            std::string(relation_name) + "'");
  }

  // Validate + append against the schema first so the indexes only ever
  // see tuples the relation accepted; a failure truncates the batch at
  // the offending tuple.
  size_t accepted = 0;
  Status append_status = Status::OK();
  for (Tuple& tuple : tuples) {
    append_status = relation->Append(tuple);
    if (!append_status.ok()) break;
    ++accepted;
  }
  tuples.resize(accepted);
  for (LiveAggregateIndex* index : indexes) {
    TAGG_RETURN_IF_ERROR(index->InsertTuples(tuples));
  }
  tuples_ingested_ += accepted;
  if (ingested != nullptr) *ingested = accepted;
  static obs::Counter& ingested_total =
      obs::MetricsRegistry::Global().GetCounter(
          "tagg_live_ingest_total",
          "Tuples ingested through LiveService (ingest rate source)");
  ingested_total.Increment(accepted);
  return append_status;
}

Status LiveService::Flush(std::string_view relation_name) {
  const std::string lowered = ToLower(relation_name);
  std::lock_guard<std::mutex> guard(mutex_);
  bool found = lowered.empty();
  for (auto& [key, entry] : entries_) {
    if (!lowered.empty() && key.relation != lowered) continue;
    entry.index->Flush();
    found = true;
  }
  if (!found) {
    return Status::NotFound("no live index registered for relation '" +
                            std::string(relation_name) + "'");
  }
  return Status::OK();
}

std::vector<LiveIndexKey> LiveService::Keys() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::vector<LiveIndexKey> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) keys.push_back(key);
  return keys;
}

LiveServiceStats LiveService::Stats() const {
  std::lock_guard<std::mutex> guard(mutex_);
  LiveServiceStats stats;
  stats.tuples_ingested = tuples_ingested_;
  stats.indexes.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    stats.indexes.emplace_back(key, entry.index->Stats());
  }
  return stats;
}

}  // namespace tagg
