#include "live/live_index.h"

#include "live/cow_index.h"
#include "util/str.h"

namespace tagg {

namespace internal {

obs::Histogram& LiveProbeSeconds() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "tagg_live_probe_seconds",
      "Latency of live-index point, range, and fold queries");
  return h;
}

obs::Counter& LiveInsertsTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_live_inserts_total",
      "Tuples folded into live indexes (ingest rate source)");
  return c;
}

obs::Counter& LiveProbesTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_live_probes_total",
      "Live-index queries served (point + range + fold)");
  return c;
}

}  // namespace internal

std::string_view LiveConcurrencyToString(LiveConcurrency concurrency) {
  switch (concurrency) {
    case LiveConcurrency::kCowEpoch:
      return "cow_epoch";
    case LiveConcurrency::kSharedLock:
      return "shared_lock";
  }
  return "unknown";
}

std::string LiveIndexStats::ToString() const {
  return StringPrintf(
      "epoch=%llu absorbed=%llu queries=%llu age=%.3fs depth=%zu "
      "nodes=%zu bytes=%zu (paper %zu) versions=%llu retired=%llu "
      "reclaimed=%llu pending=%zu",
      static_cast<unsigned long long>(epoch),
      static_cast<unsigned long long>(inserts_absorbed),
      static_cast<unsigned long long>(queries_served),
      snapshot_age_seconds, tree_depth, live_nodes, live_bytes,
      paper_bytes, static_cast<unsigned long long>(versions_published),
      static_cast<unsigned long long>(nodes_retired),
      static_cast<unsigned long long>(nodes_reclaimed), retired_pending);
}

Status LiveAggregateIndex::InsertBatch(
    const std::vector<std::pair<Period, double>>& batch) {
  // Default: semantics of N singleton inserts.  Engines override to
  // amortize publication over the batch.
  for (const auto& [valid, input] : batch) {
    TAGG_RETURN_IF_ERROR(Insert(valid, input));
  }
  return Status::OK();
}

Status LiveAggregateIndex::InsertTuple(const Tuple& tuple) {
  const LiveIndexOptions& opts = options();
  const bool needs_attribute =
      opts.aggregate != AggregateKind::kCount ||
      opts.attribute != AggregateOptions::kNoAttribute;
  double input = 0.0;
  if (needs_attribute) {
    if (opts.attribute >= tuple.arity()) {
      return Status::InvalidArgument(StringPrintf(
          "live index aggregates attribute %zu but tuple has arity %zu",
          opts.attribute, tuple.arity()));
    }
    const Value& v = tuple.value(opts.attribute);
    // SQL semantics, matching ComputeTemporalAggregate: aggregates skip
    // NULL inputs, and COUNT(attr) counts only non-null values.  The
    // epoch still advances so freshness checks see the tuple.
    if (v.is_null()) {
      NoteSkippedTuple();
      return Status::OK();
    }
    if (opts.aggregate != AggregateKind::kCount) {
      TAGG_ASSIGN_OR_RETURN(input, v.ToNumeric());
    }
  }
  return Insert(tuple.valid(), input);
}

Status LiveAggregateIndex::InsertTuples(const std::vector<Tuple>& tuples) {
  const LiveIndexOptions& opts = options();
  const bool needs_attribute =
      opts.aggregate != AggregateKind::kCount ||
      opts.attribute != AggregateOptions::kNoAttribute;
  std::vector<std::pair<Period, double>> batch;
  batch.reserve(tuples.size());
  size_t skipped = 0;
  for (const Tuple& tuple : tuples) {
    double input = 0.0;
    if (needs_attribute) {
      if (opts.attribute >= tuple.arity()) {
        return Status::InvalidArgument(StringPrintf(
            "live index aggregates attribute %zu but tuple has arity %zu",
            opts.attribute, tuple.arity()));
      }
      const Value& v = tuple.value(opts.attribute);
      if (v.is_null()) {
        ++skipped;
        continue;
      }
      if (opts.aggregate != AggregateKind::kCount) {
        TAGG_ASSIGN_OR_RETURN(input, v.ToNumeric());
      }
    }
    batch.emplace_back(tuple.valid(), input);
  }
  TAGG_RETURN_IF_ERROR(InsertBatch(batch));
  // NULL inputs advance the epoch without contributing, exactly like
  // InsertTuple; the tree is order-independent (commutative monoid), so
  // accounting for them after the batch publish is equivalent.
  for (size_t i = 0; i < skipped; ++i) NoteSkippedTuple();
  return Status::OK();
}

namespace internal {

/// Instantiates engine `Engine<Op>` for the requested monoid.
template <template <typename> class Engine>
Result<std::unique_ptr<LiveAggregateIndex>> MakeEngine(
    const LiveIndexOptions& options) {
  switch (options.aggregate) {
    case AggregateKind::kCount:
      return std::unique_ptr<LiveAggregateIndex>(
          new Engine<CountOp>(options));
    case AggregateKind::kSum:
      return std::unique_ptr<LiveAggregateIndex>(new Engine<SumOp>(options));
    case AggregateKind::kMin:
      return std::unique_ptr<LiveAggregateIndex>(new Engine<MinOp>(options));
    case AggregateKind::kMax:
      return std::unique_ptr<LiveAggregateIndex>(new Engine<MaxOp>(options));
    case AggregateKind::kAvg:
      return std::unique_ptr<LiveAggregateIndex>(new Engine<AvgOp>(options));
  }
  return Status::InvalidArgument("unknown aggregate kind");
}

}  // namespace internal

Result<std::unique_ptr<LiveAggregateIndex>> LiveAggregateIndex::Create(
    const LiveIndexOptions& options) {
  if (options.aggregate != AggregateKind::kCount &&
      options.attribute == AggregateOptions::kNoAttribute) {
    return Status::InvalidArgument(
        std::string(AggregateKindToString(options.aggregate)) +
        " live index requires an attribute to aggregate");
  }
  switch (options.concurrency) {
    case LiveConcurrency::kCowEpoch:
      return internal::MakeEngine<internal::CowLiveIndexImpl>(options);
    case LiveConcurrency::kSharedLock:
      return internal::MakeEngine<internal::LiveIndexImpl>(options);
  }
  return Status::InvalidArgument("unknown live concurrency engine");
}

}  // namespace tagg
