#include "live/live_index.h"

#include "util/str.h"

namespace tagg {

namespace internal {

obs::Histogram& LiveProbeSeconds() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "tagg_live_probe_seconds",
      "Latency of live-index point, range, and fold queries");
  return h;
}

obs::Counter& LiveInsertsTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_live_inserts_total",
      "Tuples folded into live indexes (ingest rate source)");
  return c;
}

obs::Counter& LiveProbesTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_live_probes_total",
      "Live-index queries served (point + range + fold)");
  return c;
}

}  // namespace internal

std::string LiveIndexStats::ToString() const {
  return StringPrintf(
      "epoch=%llu absorbed=%llu queries=%llu age=%.3fs depth=%zu "
      "nodes=%zu bytes=%zu (paper %zu)",
      static_cast<unsigned long long>(epoch),
      static_cast<unsigned long long>(inserts_absorbed),
      static_cast<unsigned long long>(queries_served),
      snapshot_age_seconds, tree_depth, live_nodes, live_bytes,
      paper_bytes);
}

Status LiveAggregateIndex::InsertTuple(const Tuple& tuple) {
  const LiveIndexOptions& opts = options();
  const bool needs_attribute =
      opts.aggregate != AggregateKind::kCount ||
      opts.attribute != AggregateOptions::kNoAttribute;
  double input = 0.0;
  if (needs_attribute) {
    if (opts.attribute >= tuple.arity()) {
      return Status::InvalidArgument(StringPrintf(
          "live index aggregates attribute %zu but tuple has arity %zu",
          opts.attribute, tuple.arity()));
    }
    const Value& v = tuple.value(opts.attribute);
    // SQL semantics, matching ComputeTemporalAggregate: aggregates skip
    // NULL inputs, and COUNT(attr) counts only non-null values.  The
    // epoch still advances so freshness checks see the tuple.
    if (v.is_null()) {
      NoteSkippedTuple();
      return Status::OK();
    }
    if (opts.aggregate != AggregateKind::kCount) {
      TAGG_ASSIGN_OR_RETURN(input, v.ToNumeric());
    }
  }
  return Insert(tuple.valid(), input);
}

Result<std::unique_ptr<LiveAggregateIndex>> LiveAggregateIndex::Create(
    const LiveIndexOptions& options) {
  if (options.aggregate != AggregateKind::kCount &&
      options.attribute == AggregateOptions::kNoAttribute) {
    return Status::InvalidArgument(
        std::string(AggregateKindToString(options.aggregate)) +
        " live index requires an attribute to aggregate");
  }
  switch (options.aggregate) {
    case AggregateKind::kCount:
      return std::unique_ptr<LiveAggregateIndex>(
          new internal::LiveIndexImpl<CountOp>(options));
    case AggregateKind::kSum:
      return std::unique_ptr<LiveAggregateIndex>(
          new internal::LiveIndexImpl<SumOp>(options));
    case AggregateKind::kMin:
      return std::unique_ptr<LiveAggregateIndex>(
          new internal::LiveIndexImpl<MinOp>(options));
    case AggregateKind::kMax:
      return std::unique_ptr<LiveAggregateIndex>(
          new internal::LiveIndexImpl<MaxOp>(options));
    case AggregateKind::kAvg:
      return std::unique_ptr<LiveAggregateIndex>(
          new internal::LiveIndexImpl<AvgOp>(options));
  }
  return Status::InvalidArgument("unknown aggregate kind");
}

}  // namespace tagg
