// Epoch-based reclamation gate for the live index's copy-on-write engine.
//
// The COW engine (live/cow_index.h) publishes an immutable tree version
// per writer batch and must not recycle a retired node while any reader
// could still be walking a version that references it.  EpochGate is the
// reader-side half of that contract:
//
//   * the writer owns a monotone version counter, advanced by Publish()
//     *after* the new root is visible;
//   * a reader takes a Pin: it announces the current version in one of a
//     fixed set of cache-line-padded slots, confirms the version did not
//     advance past the announcement (a Dekker-style seq_cst handshake with
//     Publish — see EnterReader), and then walks the tree with ZERO
//     atomics in the descent loop;
//   * the writer calls MinActiveVersion() at reclamation points; every
//     retire list tagged <= that minimum is unreachable from any version
//     a current or future pin can observe, so its nodes are recycled
//     (NodeArena::ReclaimThrough).
//
// Why this shape: per-node reference counting (shared_ptr) would add an
// atomic RMW per visited node on the hottest read path and double node
// size; hazard pointers would need one protected slot per traversal hop.
// Per-reader epoch slots cost one CAS + one seq_cst load to pin and one
// release store to unpin, independent of tree size, and keep nodes
// pointer-only (16-byte-accountable in the paper's model).
//
// Capacity: kSlots concurrent pins.  A reader arriving with every slot
// busy spins/yields until one frees — read sections are O(depth + answer)
// and never block on the writer, so the wait is short; the intended
// deployment (a serving pool of a few dozen threads) never queues.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "obs/metrics.h"

namespace tagg {

namespace internal {

// Registry instruments shared by every EpochGate, defined in epoch.cc.
obs::Counter& LiveVersionPinsTotal();
obs::Counter& LiveVersionsPublishedTotal();
obs::Counter& LiveNodesRetiredTotal();
obs::Counter& LiveNodesReclaimedTotal();
obs::Gauge& LiveRetiredPendingGauge();

}  // namespace internal

/// Single-writer version counter plus per-reader announcement slots.
/// Writers must serialize externally (the COW engine's writer mutex).
class EpochGate {
 public:
  static constexpr size_t kSlots = 64;
  /// Slot value meaning "no pin": versions start at 1 (the engine
  /// publishes its empty tree as version 1 before any reader exists).
  static constexpr uint64_t kIdle = 0;

  EpochGate() = default;
  EpochGate(const EpochGate&) = delete;
  EpochGate& operator=(const EpochGate&) = delete;

  /// RAII announcement.  While alive, no tree version >= version() (nor
  /// any node such a version references) will be reclaimed.
  class Pin {
   public:
    ~Pin() {
      // Release store: the writer's acquire scan of this slot (directly,
      // or through the release sequence of a later CAS by the next
      // reader) orders every node read in this section before any reuse
      // of the memory.
      slot_->store(kIdle, std::memory_order_release);
    }

    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

    /// The announced version: the pinned snapshot is at least this new.
    uint64_t version() const { return version_; }

   private:
    friend class EpochGate;
    Pin(std::atomic<uint64_t>* slot, uint64_t version)
        : slot_(slot), version_(version) {}

    std::atomic<uint64_t>* slot_;
    uint64_t version_;
  };

  /// Claims a slot and announces the current version.  The announcement
  /// loop is a Dekker handshake with Publish(): either the writer's slot
  /// scan observes our announcement, or our re-read of the version
  /// counter observes the writer's publish and we re-announce the newer
  /// version — in both cases no list we could observe is reclaimed.
  Pin EnterReader() const;

  /// Writer: advances the version counter (seq_cst, the publish side of
  /// the handshake) and returns the new version.  Call only after the new
  /// root is stored.
  uint64_t Publish() {
    const uint64_t v = version_.load(std::memory_order_relaxed) + 1;
    version_.store(v, std::memory_order_seq_cst);
    internal::LiveVersionsPublishedTotal().Increment();
    return v;
  }

  /// Latest published version (monitoring; readers use EnterReader).
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Writer: the minimum version any active pin announced, or the current
  /// version when no pin is active.  Retire lists tagged <= this value
  /// are safe to reclaim.
  uint64_t MinActiveVersion() const;

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> v{kIdle};
  };

  mutable Slot slots_[kSlots];
  std::atomic<uint64_t> version_{0};
};

}  // namespace tagg
