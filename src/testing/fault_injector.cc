#include "testing/fault_injector.h"

namespace tagg {
namespace testing {

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::Arm(std::string site_pattern, uint64_t nth) {
  std::lock_guard<std::mutex> lock(mutex_);
  pattern_ = std::move(site_pattern);
  nth_ = nth;
  hits_ = 0;
  injected_ = 0;
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  // Acquire the mutex so no in-flight Hit() straddles the disarm.
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.store(false, std::memory_order_release);
}

uint64_t FaultInjector::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

uint64_t FaultInjector::injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_;
}

Status FaultInjector::Hit(std::string_view site) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
  if (site.find(pattern_) == std::string_view::npos) return Status::OK();
  ++hits_;
  if (hits_ != nth_) return Status::OK();
  ++injected_;
  return Status::IOError("injected fault at " + std::string(site) +
                         " (operation " + std::to_string(nth_) + ")");
}

}  // namespace testing
}  // namespace tagg
