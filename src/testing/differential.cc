#include "testing/differential.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <iterator>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/aggregates.h"
#include "core/column_scan.h"
#include "core/partitioned_agg.h"
#include "core/workload.h"
#include "live/live_index.h"
#include "shard/sharded_service.h"
#include "storage/column_relation.h"
#include "storage/relation_io.h"
#include "temporal/catalog.h"
#include "util/random.h"

namespace tagg {
namespace testing {
namespace {

/// EmployedSchema is (name: string, salary: int); salary is the aggregated
/// attribute for SUM/MIN/MAX/AVG.
constexpr size_t kSalaryAttribute = 1;

/// Every palette member is an integer well inside 2^53, so its double
/// image is exact and small sums stay exactly representable; divergences
/// beyond the documented tolerance are then real bugs, not palette noise.
constexpr int64_t kPalette[] = {0, 1, -1, 2, 3, 7, -5, 100, 1000, 25000};

/// 1e17 = 2^17 * 5^17 is exactly representable, but adding 1.0 to it is
/// not: the adversarial magnitude that exposes uncompensated accumulators.
constexpr int64_t kBigMagnitude = 100000000000000000LL;

int64_t PickSalary(Rng& rng, bool allow_extreme) {
  if (allow_extreme && rng.Bernoulli(0.15)) {
    return rng.Bernoulli(0.5) ? kBigMagnitude : -kBigMagnitude;
  }
  const int64_t n = static_cast<int64_t>(std::size(kPalette));
  return kPalette[rng.Uniform(0, n - 1)];
}

void AddTuple(Relation& rel, Instant s, Instant e, int64_t salary) {
  rel.AppendUnchecked(
      Tuple({Value::String("t" + std::to_string(rel.size())),
             Value::Int(salary)},
            Period(s, e)));
}

Result<Relation> GenerateViaWorkload(uint64_t seed, Rng& rng,
                                     TupleOrder order) {
  WorkloadSpec spec;
  spec.num_tuples = static_cast<size_t>(rng.Uniform(1, 96));
  spec.lifespan = rng.Uniform(50, 2000);
  spec.short_min_duration = 1;
  spec.short_max_duration = std::max<Instant>(1, spec.lifespan / 3);
  spec.long_lived_fraction = rng.Bernoulli(0.5) ? 0.4 : 0.0;
  spec.order = order;
  if (order == TupleOrder::kKOrdered) {
    spec.k = rng.Uniform(1, 4);
    spec.k_percentage = 0.1;
    // Distance-k swaps need k to fit inside the relation.
    spec.num_tuples = std::max<size_t>(spec.num_tuples, 12);
  }
  spec.seed = seed ^ 0x9E3779B97F4A7C15ull;
  return GenerateEmployedRelation(spec);
}

constexpr AggregateKind kAllAggregates[] = {
    AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kMin,
    AggregateKind::kMax, AggregateKind::kAvg};

bool IsInvertible(AggregateKind kind) {
  return kind == AggregateKind::kCount || kind == AggregateKind::kSum ||
         kind == AggregateKind::kAvg;
}

size_t AttributeFor(AggregateKind kind) {
  return kind == AggregateKind::kCount ? AggregateOptions::kNoAttribute
                                       : kSalaryAttribute;
}

/// Names the seed, shape, aggregate, and configuration so the failure is
/// replayable from the message alone.
Status Divergence(uint64_t seed, const WorkloadInfo& info,
                  AggregateKind aggregate, std::string_view config,
                  std::string_view detail) {
  return Status::Internal(
      "differential divergence: reproduce with RunDifferentialSeed(" +
      std::to_string(seed) + ") [shape=" + info.shape +
      ", tuples=" + std::to_string(info.tuples) +
      ", aggregate=" + std::string(AggregateKindToString(aggregate)) +
      ", config=" + std::string(config) + "]: " + std::string(detail));
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Per-value comparison under the documented policy (see differential.h).
/// `conditioning` is C(I) for the segment under comparison (0 when no
/// conditioning series was supplied).
Status ValuesMatch(const Value& expected, const Value& actual,
                   AggregateKind kind, double tol, double conditioning) {
  if (expected.is_null() || actual.is_null()) {
    if (expected.is_null() && actual.is_null()) return Status::OK();
    return Status::Internal("empty-interval mismatch: expected " +
                            expected.ToString() + ", got " +
                            actual.ToString());
  }
  if (kind == AggregateKind::kCount) {
    if (expected == actual) return Status::OK();
    return Status::Internal("COUNT mismatch: expected " +
                            expected.ToString() + ", got " +
                            actual.ToString());
  }
  TAGG_ASSIGN_OR_RETURN(const double x, expected.ToNumeric());
  TAGG_ASSIGN_OR_RETURN(const double y, actual.ToNumeric());
  if (kind == AggregateKind::kMin || kind == AggregateKind::kMax) {
    if (x == y) return Status::OK();
    return Status::Internal("MIN/MAX mismatch: expected " +
                            expected.ToString() + ", got " +
                            actual.ToString());
  }
  const double scale =
      std::max({1.0, std::abs(x), std::abs(y), conditioning});
  if (std::abs(x - y) <= tol * scale) return Status::OK();
  return Status::Internal(
      "SUM/AVG outside tolerance: expected " + expected.ToString() +
      ", got " + actual.ToString() + " (|diff| = " +
      FormatDouble(std::abs(x - y)) + " > " + FormatDouble(tol) + " * " +
      FormatDouble(scale) + ")");
}

/// Forward-only lookup of a conditioning partition's value at an instant.
class ConditioningCursor {
 public:
  explicit ConditioningCursor(const std::vector<ResultInterval>* series)
      : series_(series) {}

  /// The maximum C over [lo, hi] (a compared segment may span several of
  /// the finer conditioning intervals); segments must be queried in time
  /// order.  0 without a series or over all-empty intervals.
  double MaxOver(Instant lo, Instant hi) {
    if (series_ == nullptr) return 0.0;
    while (i_ < series_->size() && (*series_)[i_].period.end() < lo) ++i_;
    double max_c = 0.0;
    for (size_t j = i_; j < series_->size(); ++j) {
      const ResultInterval& interval = (*series_)[j];
      if (interval.period.start() > hi) break;
      if (!interval.value.is_null()) {
        const Result<double> numeric = interval.value.ToNumeric();
        if (numeric.ok()) {
          max_c = std::max(max_c, std::abs(numeric.value()));
        }
      }
      if (interval.period.end() >= hi) break;
    }
    return max_c;
  }

 private:
  const std::vector<ResultInterval>* series_;
  size_t i_ = 0;
};

Result<std::vector<ResultInterval>> BatchSeries(
    const Relation& relation, const AggregateOptions& options) {
  TAGG_ASSIGN_OR_RETURN(AggregateSeries series,
                        ComputeTemporalAggregate(relation, options));
  return std::move(series.intervals);
}

Result<std::vector<ResultInterval>> PartitionedSeries(
    const Relation& relation, const PartitionedOptions& options) {
  TAGG_ASSIGN_OR_RETURN(AggregateSeries series,
                        ComputePartitionedAggregate(relation, options));
  return std::move(series.intervals);
}

/// One pruned-scan configuration over the seed's column file, coalesced
/// so the cut set matches the reference's maximal equal-value runs.
Result<std::vector<ResultInterval>> ColumnScanSeries(
    const ColumnRelation& column, AggregateKind aggregate, size_t attribute,
    bool prune, bool use_summaries, size_t workers) {
  ColumnScanOptions options;
  options.aggregate = aggregate;
  options.attribute = attribute;
  options.prune = prune;
  options.use_summaries = use_summaries;
  options.parallel_workers = workers;
  TAGG_ASSIGN_OR_RETURN(AggregateSeries series,
                        ComputeColumnScanAggregate(column, options));
  return CoalesceEqualValues(std::move(series.intervals));
}

/// Removes the seed's temporary column file on every exit path (including
/// a Divergence return mid-grid).
struct ColumnFileRemover {
  std::string path;
  ~ColumnFileRemover() {
    if (path.empty()) return;
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
};

Result<std::vector<ResultInterval>> LiveSeries(const Relation& relation,
                                               AggregateKind aggregate,
                                               size_t attribute,
                                               LiveConcurrency concurrency,
                                               bool use_batch) {
  LiveIndexOptions options;
  options.aggregate = aggregate;
  options.attribute = attribute;
  options.concurrency = concurrency;
  TAGG_ASSIGN_OR_RETURN(std::unique_ptr<LiveAggregateIndex> index,
                        LiveAggregateIndex::Create(options));
  if (use_batch) {
    // One InsertBatch per relation: the amortized writer path must land
    // the exact same tree as tuple-at-a-time inserts.  The generated
    // workloads carry no NULL salaries, so extracting the input here
    // matches InsertTuple's behaviour.
    std::vector<std::pair<Period, double>> batch;
    batch.reserve(relation.size());
    for (const Tuple& tuple : relation) {
      double input = 0.0;
      if (aggregate != AggregateKind::kCount) {
        TAGG_ASSIGN_OR_RETURN(input, tuple.value(attribute).ToNumeric());
      }
      batch.emplace_back(tuple.valid(), input);
    }
    TAGG_RETURN_IF_ERROR(index->InsertBatch(batch));
  } else {
    for (const Tuple& tuple : relation) {
      TAGG_RETURN_IF_ERROR(index->InsertTuple(tuple));
    }
  }
  TAGG_ASSIGN_OR_RETURN(AggregateSeries series,
                        index->AggregateOver(Period::All(),
                                             /*coalesce=*/true));
  return std::move(series.intervals);
}

/// The aggregated attribute's registration name, as ShardedLiveService
/// wants it ("" for COUNT's kNoAttribute).
std::string AttributeNameFor(const Relation& relation, size_t attribute) {
  if (attribute == AggregateOptions::kNoAttribute) return {};
  return relation.schema().attribute(attribute).name;
}

/// A catalog holding an empty same-name, same-schema clone of `relation`
/// for the sharded service to register against and ingest into; the
/// caller's relation stays untouched.
Result<Catalog> ShardedCatalogFor(const Relation& relation) {
  Catalog catalog;
  TAGG_RETURN_IF_ERROR(catalog.Register(
      std::make_shared<Relation>(relation.schema(), relation.name())));
  return catalog;
}

/// Loads `relation` through a ShardedLiveService — tuple-at-a-time or
/// batched, optionally rebalancing mid-stream or splitting a shard after
/// the load — and scatter-gathers the full series.
Result<std::vector<ResultInterval>> ShardedSeries(
    const Relation& relation, AggregateKind aggregate, size_t attribute,
    size_t shards, size_t workers, bool use_batch, bool rebalance_midway,
    bool split_after) {
  TAGG_ASSIGN_OR_RETURN(Catalog catalog, ShardedCatalogFor(relation));
  shard::ShardedServiceOptions options;
  options.shards = shards;
  // A tiny hot window forces the boot boundaries through the generated
  // workloads' small domains, so tuples straddle and spread across the
  // shards even before any data-driven rebalance.
  options.hot_window = Period(0, 63);
  options.scatter_workers = workers;
  shard::ShardedLiveService service(options);
  TAGG_RETURN_IF_ERROR(
      service.RegisterIndex(catalog, relation.name(), aggregate,
                            AttributeNameFor(relation, attribute)));
  const size_t rebalance_at = relation.size() / 2;
  std::vector<Tuple> batch;
  size_t ingested = 0;
  for (const Tuple& tuple : relation) {
    if (use_batch) {
      batch.push_back(tuple);
    } else {
      TAGG_RETURN_IF_ERROR(service.Ingest(relation.name(), tuple));
    }
    if (rebalance_midway && ++ingested == rebalance_at) {
      if (!batch.empty()) {
        TAGG_RETURN_IF_ERROR(
            service.IngestBatch(relation.name(), std::move(batch)));
        batch.clear();
      }
      // Re-cut at the quantiles of what has arrived so far; the rest of
      // the stream lands on the new map.
      TAGG_RETURN_IF_ERROR(service.Reshard(shards));
    }
  }
  if (!batch.empty()) {
    TAGG_RETURN_IF_ERROR(
        service.IngestBatch(relation.name(), std::move(batch)));
  }
  TAGG_RETURN_IF_ERROR(service.Flush());
  if (split_after) {
    TAGG_RETURN_IF_ERROR(service.SplitShard(0));
  }
  TAGG_ASSIGN_OR_RETURN(
      AggregateSeries series,
      service.AggregateOver(relation.name(), aggregate, attribute,
                            Period::All(), /*coalesce=*/true));
  return std::move(series.intervals);
}

/// Exact (no-tolerance) equality of two engines' series.  Both engines
/// execute the identical Add sequence in identical order, so even SUM/AVG
/// must agree bit for bit; any difference is an engine bug, not float
/// noise.
Status SeriesTupleIdentical(const std::vector<ResultInterval>& a,
                            const std::vector<ResultInterval>& b) {
  if (a == b) return Status::OK();
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (!(a[i] == b[i])) {
      return Status::Internal(
          "engine series diverge at interval " + std::to_string(i) + ": " +
          a[i].period.ToString() + "=" + a[i].value.ToString() + " vs " +
          b[i].period.ToString() + "=" + b[i].value.ToString());
    }
  }
  return Status::Internal("engine series differ in length: " +
                          std::to_string(a.size()) + " vs " +
                          std::to_string(b.size()) + " intervals");
}

}  // namespace

Result<Relation> GenerateDifferentialRelation(uint64_t seed,
                                              WorkloadInfo* info) {
  Rng rng(seed);
  Relation rel(EmployedSchema(), "fuzz");
  std::string shape;
  switch (rng.Uniform(0, 9)) {
    case 0:
      shape = "empty";
      break;
    case 1: {
      shape = "single-tuple";
      Instant s = 0;
      Instant e = 0;
      switch (rng.Uniform(0, 4)) {
        case 0: s = e = rng.Uniform(0, 100); break;  // 1-chronon period
        case 1: s = kOrigin; e = rng.Uniform(0, 50); break;
        case 2: s = rng.Uniform(0, 50); e = kForever; break;
        case 3: s = kOrigin; e = kForever; break;
        default:
          s = rng.Uniform(0, 80);
          e = s + rng.Uniform(0, 40);
          break;
      }
      AddTuple(rel, s, e, PickSalary(rng, true));
      break;
    }
    case 2: {
      // Periods touching the ends of the time-line, where off-by-one
      // boundary handling (e + 1 splits) is most fragile.
      shape = "timeline-boundaries";
      const int64_t n = rng.Uniform(2, 16);
      for (int64_t i = 0; i < n; ++i) {
        Instant s = kOrigin;
        Instant e = kForever;
        switch (rng.Uniform(0, 3)) {
          case 0: e = rng.Uniform(0, 100); break;          // [origin, e]
          case 1: s = rng.Uniform(0, 100); break;          // [s, forever]
          case 2: break;                                   // whole line
          default: s = e = kForever; break;                // point at oo
        }
        AddTuple(rel, s, e, PickSalary(rng, true));
      }
      break;
    }
    case 3: {
      // 1-chronon periods over a tiny domain: duplicate instants, zero
      // interior, every boundary adjacent to another.
      shape = "point-periods";
      const int64_t n = rng.Uniform(1, 48);
      for (int64_t i = 0; i < n; ++i) {
        const Instant t =
            rng.Bernoulli(0.05) ? kForever : rng.Uniform(0, 20);
        AddTuple(rel, t, t, PickSalary(rng, false));
      }
      break;
    }
    case 4: {
      // Few distinct start times, many tuples: stresses tie handling in
      // every sort and the k-ordered window's duplicate starts.
      shape = "duplicate-starts";
      const int64_t starts = rng.Uniform(1, 3);
      std::vector<Instant> pool;
      for (int64_t i = 0; i < starts; ++i) pool.push_back(rng.Uniform(0, 20));
      const int64_t n = rng.Uniform(2, 40);
      for (int64_t i = 0; i < n; ++i) {
        const Instant s = pool[rng.Uniform(0, starts - 1)];
        const Instant e =
            rng.Bernoulli(0.1) ? kForever : s + rng.Uniform(0, 30);
        AddTuple(rel, s, e, PickSalary(rng, false));
      }
      break;
    }
    case 5: {
      // Chains of meeting periods ([a,b] then [b+1,c]) plus runs of
      // identical tuples: adjacent boundaries must neither merge nor gap.
      shape = "adjacent-boundaries";
      Instant cursor = rng.Uniform(0, 5);
      const int64_t segments = rng.Uniform(1, 12);
      for (int64_t i = 0; i < segments; ++i) {
        const Instant len = rng.Uniform(1, 10);
        const int64_t salary = PickSalary(rng, false);
        const int64_t copies = rng.Bernoulli(0.3) ? rng.Uniform(2, 4) : 1;
        for (int64_t c = 0; c < copies; ++c) {
          AddTuple(rel, cursor, cursor + len - 1, salary);
        }
        cursor += len;
      }
      break;
    }
    case 6: {
      // The accumulator stressor: ±1e17 magnitudes overlapping unit
      // values, so an uncompensated running sum loses the small addend.
      shape = "mixed-magnitude";
      AddTuple(rel, 0, rng.Uniform(10, 40), kBigMagnitude);
      AddTuple(rel, rng.Uniform(5, 20), rng.Uniform(50, 120), 1);
      const int64_t n = rng.Uniform(0, 20);
      for (int64_t i = 0; i < n; ++i) {
        const Instant s = rng.Uniform(0, 150);
        const Instant e = s + rng.Uniform(0, 60);
        AddTuple(rel, s, e,
                 rng.Bernoulli(0.5)
                     ? (rng.Bernoulli(0.5) ? kBigMagnitude : -kBigMagnitude)
                     : PickSalary(rng, false));
      }
      break;
    }
    case 7: {
      shape = "random-workload";
      TAGG_ASSIGN_OR_RETURN(rel,
                            GenerateViaWorkload(seed, rng,
                                                TupleOrder::kRandom));
      break;
    }
    case 8: {
      // Sorted or k-ordered streams: the k-ordered tree's gc threshold
      // advances, so these are the near-k-order-violating workloads.
      shape = "near-k-ordered";
      TAGG_ASSIGN_OR_RETURN(
          rel, GenerateViaWorkload(seed, rng,
                                   rng.Bernoulli(0.5)
                                       ? TupleOrder::kSorted
                                       : TupleOrder::kKOrdered));
      break;
    }
    default: {
      // A shuffled union of the point and boundary shapes.
      shape = "mixed-shapes";
      const int64_t points = rng.Uniform(1, 16);
      for (int64_t i = 0; i < points; ++i) {
        const Instant t = rng.Uniform(0, 30);
        AddTuple(rel, t, t, PickSalary(rng, true));
      }
      const int64_t spans = rng.Uniform(1, 16);
      for (int64_t i = 0; i < spans; ++i) {
        const Instant s = rng.Uniform(0, 40);
        const Instant e =
            rng.Bernoulli(0.15) ? kForever : s + rng.Uniform(0, 25);
        AddTuple(rel, s, e, PickSalary(rng, true));
      }
      Relation shuffled(rel.schema(), rel.name());
      std::vector<Tuple> tuples = rel.tuples();
      rng.Shuffle(tuples.size(), [&](size_t i, size_t j) {
        std::swap(tuples[i], tuples[j]);
      });
      for (Tuple& t : tuples) shuffled.AppendUnchecked(std::move(t));
      rel = std::move(shuffled);
      break;
    }
  }
  if (info != nullptr) {
    info->shape = shape;
    info->tuples = rel.size();
  }
  return rel;
}

Result<std::vector<ResultInterval>> ComputeConditioningSeries(
    const Relation& relation, size_t attribute) {
  Relation abs_relation(relation.schema(), relation.name());
  abs_relation.Reserve(relation.size());
  for (const Tuple& tuple : relation) {
    std::vector<Value> values = tuple.values();
    if (attribute < values.size() && !values[attribute].is_null()) {
      const Result<double> numeric = values[attribute].ToNumeric();
      if (numeric.ok()) {
        values[attribute] = Value::Double(std::abs(numeric.value()));
      }
    }
    abs_relation.AppendUnchecked(Tuple(std::move(values), tuple.valid()));
  }
  AggregateOptions options;
  options.aggregate = AggregateKind::kSum;
  options.attribute = attribute;
  options.algorithm = AlgorithmKind::kReference;
  TAGG_ASSIGN_OR_RETURN(AggregateSeries series,
                        ComputeTemporalAggregate(abs_relation, options));
  return std::move(series.intervals);
}

Status CompareSeries(const std::vector<ResultInterval>& expected,
                     const std::vector<ResultInterval>& actual,
                     AggregateKind kind, double relative_tolerance,
                     const std::vector<ResultInterval>* conditioning) {
  TAGG_RETURN_IF_ERROR(ValidatePartition(expected));
  TAGG_RETURN_IF_ERROR(ValidatePartition(actual));
  // Walk both partitions of [kOrigin, kForever] as step functions over
  // their merged boundaries; coalescing differences then cannot register
  // as divergences.
  ConditioningCursor condition(conditioning);
  size_t ie = 0;
  size_t ia = 0;
  while (ie < expected.size() && ia < actual.size()) {
    const ResultInterval& re = expected[ie];
    const ResultInterval& ra = actual[ia];
    const Instant seg_lo = std::max(re.period.start(), ra.period.start());
    const Instant seg_hi = std::min(re.period.end(), ra.period.end());
    const Status match = ValuesMatch(re.value, ra.value, kind,
                                     relative_tolerance,
                                     condition.MaxOver(seg_lo, seg_hi));
    if (!match.ok()) {
      return Status::Internal("over [" + InstantToString(seg_lo) + ", " +
                              InstantToString(seg_hi) + "]: " +
                              std::string(match.message()));
    }
    const Instant ee = re.period.end();
    const Instant ea = ra.period.end();
    if (ee <= ea) ++ie;
    if (ea <= ee) ++ia;
  }
  return Status::OK();
}

/// CompareSeries restricted to a window: both series must partition
/// `window` (a windowed scan never covers [kOrigin, kForever], so
/// ValidatePartition's full-timeline contract does not apply), then the
/// same merged-boundary step-function walk decides value equality.
Status CompareWindowedSeries(const std::vector<ResultInterval>& expected,
                             const std::vector<ResultInterval>& actual,
                             AggregateKind kind, double relative_tolerance,
                             const std::vector<ResultInterval>* conditioning,
                             Period window) {
  const auto validate = [&window](const std::vector<ResultInterval>& series,
                                  const char* label) -> Status {
    if (series.empty()) {
      return Status::Internal(std::string(label) + " series is empty");
    }
    if (series.front().period.start() != window.start() ||
        series.back().period.end() != window.end()) {
      return Status::Internal(
          std::string(label) + " series spans [" +
          InstantToString(series.front().period.start()) + ", " +
          InstantToString(series.back().period.end()) +
          "] instead of the window [" + InstantToString(window.start()) +
          ", " + InstantToString(window.end()) + "]");
    }
    for (size_t i = 1; i < series.size(); ++i) {
      if (series[i].period.start() != series[i - 1].period.end() + 1) {
        return Status::Internal(std::string(label) +
                                " series has a gap or overlap after " +
                                InstantToString(series[i - 1].period.end()));
      }
    }
    return Status::OK();
  };
  TAGG_RETURN_IF_ERROR(validate(expected, "expected"));
  TAGG_RETURN_IF_ERROR(validate(actual, "actual"));
  ConditioningCursor condition(conditioning);
  size_t ie = 0;
  size_t ia = 0;
  while (ie < expected.size() && ia < actual.size()) {
    const ResultInterval& re = expected[ie];
    const ResultInterval& ra = actual[ia];
    const Instant seg_lo = std::max(re.period.start(), ra.period.start());
    const Instant seg_hi = std::min(re.period.end(), ra.period.end());
    const Status match = ValuesMatch(re.value, ra.value, kind,
                                     relative_tolerance,
                                     condition.MaxOver(seg_lo, seg_hi));
    if (!match.ok()) {
      return Status::Internal("over [" + InstantToString(seg_lo) + ", " +
                              InstantToString(seg_hi) + "]: " +
                              std::string(match.message()));
    }
    const Instant ee = re.period.end();
    const Instant ea = ra.period.end();
    if (ee <= ea) ++ie;
    if (ea <= ee) ++ia;
  }
  return Status::OK();
}

Status RunDifferentialSeed(uint64_t seed, const DifferentialOptions& options,
                           size_t* comparisons) {
  WorkloadInfo info;
  TAGG_ASSIGN_OR_RETURN(Relation relation,
                        GenerateDifferentialRelation(seed, &info));

  // C(I) series for the tolerance scale of SUM/AVG (see differential.h);
  // one pass serves every configuration of both aggregates.
  Result<std::vector<ResultInterval>> conditioning =
      ComputeConditioningSeries(relation, kSalaryAttribute);
  if (!conditioning.ok()) {
    return Divergence(seed, info, AggregateKind::kSum, "conditioning",
                      conditioning.status().message());
  }

  // One column file per seed serves every aggregate's pruned-scan grid;
  // tiny blocks so even the small generated relations span many blocks
  // and the skip/summarize/decode classification sees all three classes.
  std::shared_ptr<const ColumnRelation> column;
  ColumnFileRemover column_file;
  if (options.include_column_scan) {
    column_file.path =
        (std::filesystem::temp_directory_path() /
         ("tagg_diff_column_" + std::to_string(::getpid()) + "_" +
          std::to_string(seed) + ".tcr"))
            .string();
    Result<std::shared_ptr<const ColumnRelation>> written =
        WriteRelationToColumnFile(relation, column_file.path,
                                  /*rows_per_block=*/32);
    if (!written.ok()) {
      return Divergence(seed, info, AggregateKind::kCount,
                        "column-scan/write", written.status().message());
    }
    column = std::move(written.value());
  }

  for (const AggregateKind aggregate : kAllAggregates) {
    const size_t attribute = AttributeFor(aggregate);
    const std::vector<ResultInterval>* condition =
        (aggregate == AggregateKind::kSum ||
         aggregate == AggregateKind::kAvg)
            ? &conditioning.value()
            : nullptr;

    AggregateOptions base;
    base.aggregate = aggregate;
    base.attribute = attribute;
    base.coalesce_equal_values = true;

    AggregateOptions ref = base;
    ref.algorithm = AlgorithmKind::kReference;
    Result<std::vector<ResultInterval>> oracle = BatchSeries(relation, ref);
    if (!oracle.ok()) {
      return Divergence(seed, info, aggregate, "reference",
                        oracle.status().message());
    }

    const auto check =
        [&](std::string_view config,
            Result<std::vector<ResultInterval>> actual) -> Status {
      if (!actual.ok()) {
        return Divergence(seed, info, aggregate, config,
                          actual.status().message());
      }
      const Status diff = CompareSeries(oracle.value(), actual.value(),
                                        aggregate,
                                        options.relative_tolerance,
                                        condition);
      if (!diff.ok()) {
        return Divergence(seed, info, aggregate, config, diff.message());
      }
      if (comparisons != nullptr) ++*comparisons;
      return Status::OK();
    };

    // Batch algorithms.
    for (const AlgorithmKind algorithm :
         {AlgorithmKind::kLinkedList, AlgorithmKind::kAggregationTree,
          AlgorithmKind::kBalancedTree, AlgorithmKind::kTwoScan}) {
      AggregateOptions opts = base;
      opts.algorithm = algorithm;
      TAGG_RETURN_IF_ERROR(check(AlgorithmKindToString(algorithm),
                                 BatchSeries(relation, opts)));
    }

    // The k-ordered tree in both supported postures: presorted with the
    // minimal window, and unsorted with a window covering any permutation
    // (every n-tuple stream is n-ordered).
    {
      AggregateOptions opts = base;
      opts.algorithm = AlgorithmKind::kKOrderedTree;
      opts.k = 1;
      opts.presort = true;
      TAGG_RETURN_IF_ERROR(
          check("k-ordered/presort-k1", BatchSeries(relation, opts)));
      opts.k = static_cast<int64_t>(std::max<size_t>(relation.size(), 1));
      opts.presort = false;
      TAGG_RETURN_IF_ERROR(
          check("k-ordered/k-n", BatchSeries(relation, opts)));
    }

    if (options.include_partitioned) {
      struct PartConfig {
        const char* name;
        size_t partitions;
        size_t workers;
        bool spill;
        PartitionKernel kernel;
        bool force_scalar = false;
        bool compress_spill = true;
      };
      // MIN/MAX have no inverse, so explicit sweep/columnar requests fall
      // back to the tree there (the configuration itself stays covered).
      const PartitionKernel value_kernel = IsInvertible(aggregate)
                                               ? PartitionKernel::kSweep
                                               : PartitionKernel::kTree;
      const PartitionKernel columnar_kernel =
          IsInvertible(aggregate) ? PartitionKernel::kColumnar
                                  : PartitionKernel::kTree;
      const PartConfig grid[] = {
          // kAuto now routes invertible aggregates through the columnar
          // kernel, so the first and last rows cover columnar implicitly.
          {"partitioned/p3", 3, 1, false, PartitionKernel::kAuto},
          {"partitioned/p5-w4-tree", 5, 4, false, PartitionKernel::kTree},
          {"partitioned/p4-w3-spill", 4, 3, true, value_kernel},
          {"partitioned/p1-w2-spill", 1, 2, true, PartitionKernel::kAuto},
          // Columnar kernel, both dispatch paths, plus the compressed and
          // raw spill codecs; the tiny sort budget forces external runs.
          {"partitioned/p4-w2-columnar", 4, 2, false, columnar_kernel},
          {"partitioned/p3-columnar-scalar", 3, 1, false, columnar_kernel,
           /*force_scalar=*/true},
          {"partitioned/p2-w2-spill-columnar", 2, 2, true, columnar_kernel},
          {"partitioned/p3-spill-columnar-scalar-raw", 3, 1, true,
           columnar_kernel, /*force_scalar=*/true,
           /*compress_spill=*/false},
      };
      for (const PartConfig& cfg : grid) {
        PartitionedOptions popts;
        popts.aggregate = aggregate;
        popts.attribute = attribute;
        popts.partitions = cfg.partitions;
        popts.parallel_workers = cfg.workers;
        popts.spill_to_disk = cfg.spill;
        popts.kernel = cfg.kernel;
        popts.force_scalar_kernel = cfg.force_scalar;
        popts.compress_spill = cfg.compress_spill;
        // Small enough that spilled sweep regions sort through external
        // runs, exercising the PodRunSorter path.
        popts.spill_sort_budget_records = 32;
        TAGG_RETURN_IF_ERROR(
            check(cfg.name, PartitionedSeries(relation, popts)));
      }
    }

    if (options.include_column_scan) {
      struct ScanConfig {
        const char* name;
        bool prune;
        bool use_summaries;
        size_t workers;
      };
      const ScanConfig grid[] = {
          {"column-scan/unpruned-w1", false, false, 1},
          {"column-scan/pruned-w1", true, true, 1},
          {"column-scan/pruned-nosummary-w3", true, false, 3},
          {"column-scan/pruned-w3", true, true, 3},
      };
      for (const ScanConfig& cfg : grid) {
        Result<std::vector<ResultInterval>> scan =
            ColumnScanSeries(*column, aggregate, attribute, cfg.prune,
                             cfg.use_summaries, cfg.workers);
        TAGG_RETURN_IF_ERROR(check(cfg.name, scan));
        // Footer summaries and decoded events contribute exact values
        // for the order-insensitive aggregates, so after coalescing the
        // scan's cut set collapses to the reference's maximal
        // equal-value runs and the series must match bit for bit.
        if (aggregate == AggregateKind::kCount ||
            aggregate == AggregateKind::kMin ||
            aggregate == AggregateKind::kMax) {
          const Status identical =
              SeriesTupleIdentical(oracle.value(), scan.value());
          if (!identical.ok()) {
            return Divergence(seed, info, aggregate,
                              std::string(cfg.name) + "/reference-equality",
                              identical.message());
          }
          if (comparisons != nullptr) ++*comparisons;
        }
      }

      // Windowed scans: a window at the oracle's inner quartiles (nudged
      // off the boundary so clipping fires at both edges) makes the zone
      // map actually skip leading/trailing blocks and the summary fast
      // path absorb covering ones; the expectation is the reference
      // series restricted to the window and re-coalesced.
      const std::vector<ResultInterval>& full = oracle.value();
      if (full.size() >= 4) {
        const Instant wlo_raw = full[full.size() / 4].period.start();
        const Period& high = full[(3 * full.size()) / 4].period;
        const Instant whi =
            high.end() == kForever ? high.start() : high.end();
        if (wlo_raw + 1 <= whi) {
          const Instant wlo = wlo_raw + 1;
          std::vector<ResultInterval> expected;
          for (const ResultInterval& ri : full) {
            const Instant s = std::max(ri.period.start(), wlo);
            const Instant e = std::min(ri.period.end(), whi);
            if (s > e) continue;
            expected.push_back(ResultInterval{Period(s, e), ri.value});
          }
          expected = CoalesceEqualValues(std::move(expected));
          for (const size_t workers : {size_t{1}, size_t{3}}) {
            const std::string name =
                "column-scan/windowed-w" + std::to_string(workers);
            ColumnScanOptions sopts;
            sopts.aggregate = aggregate;
            sopts.attribute = attribute;
            sopts.window = Period(wlo, whi);
            sopts.parallel_workers = workers;
            Result<AggregateSeries> series =
                ComputeColumnScanAggregate(*column, sopts);
            if (!series.ok()) {
              return Divergence(seed, info, aggregate, name,
                                series.status().message());
            }
            const std::vector<ResultInterval> scan =
                CoalesceEqualValues(std::move(series.value().intervals));
            const Status diff = CompareWindowedSeries(
                expected, scan, aggregate, options.relative_tolerance,
                condition, Period(wlo, whi));
            if (!diff.ok()) {
              return Divergence(seed, info, aggregate, name,
                                diff.message());
            }
            if (aggregate == AggregateKind::kCount ||
                aggregate == AggregateKind::kMin ||
                aggregate == AggregateKind::kMax) {
              const Status identical = SeriesTupleIdentical(expected, scan);
              if (!identical.ok()) {
                return Divergence(seed, info, aggregate,
                                  name + "/restricted-equality",
                                  identical.message());
              }
            }
            if (comparisons != nullptr) ++*comparisons;
          }
        }
      }
    }

    // The unsharded COW series doubles as the identity oracle for the
    // sharded configurations below.
    std::vector<ResultInterval> cow_series;
    bool have_cow = false;

    if (options.include_live_index) {
      Result<std::vector<ResultInterval>> locked =
          LiveSeries(relation, aggregate, attribute,
                     LiveConcurrency::kSharedLock, /*use_batch=*/false);
      TAGG_RETURN_IF_ERROR(check("live-index/locked", locked));
      Result<std::vector<ResultInterval>> cow =
          LiveSeries(relation, aggregate, attribute,
                     LiveConcurrency::kCowEpoch, /*use_batch=*/false);
      TAGG_RETURN_IF_ERROR(check("live-index/cow", cow));
      Result<std::vector<ResultInterval>> cow_batch =
          LiveSeries(relation, aggregate, attribute,
                     LiveConcurrency::kCowEpoch, /*use_batch=*/true);
      TAGG_RETURN_IF_ERROR(check("live-index/cow-batch", cow_batch));
      // Beyond the tolerance-based oracle diff: the engines execute the
      // same insert sequence, so they must agree bit for bit.
      Status identical =
          SeriesTupleIdentical(locked.value(), cow.value());
      if (identical.ok()) {
        identical = SeriesTupleIdentical(cow.value(), cow_batch.value());
      }
      if (!identical.ok()) {
        return Divergence(seed, info, aggregate, "live-index/engine-equality",
                          identical.message());
      }
      if (comparisons != nullptr) *comparisons += 2;
      cow_series = std::move(cow.value());
      have_cow = true;
    }

    if (options.include_sharded) {
      struct ShardConfig {
        const char* name;
        size_t shards;
        size_t workers;
        bool batch;
        bool rebalance;
        bool split = false;
      };
      const ShardConfig grid[] = {
          {"sharded/s2-w1-batch", 2, 1, true, false},
          {"sharded/s2-w2-rebalance", 2, 2, false, true},
          {"sharded/s4-w2-batch-rebalance", 4, 2, true, true},
          {"sharded/s4-w1-split", 4, 1, false, false, /*split=*/true},
      };
      for (const ShardConfig& cfg : grid) {
        Result<std::vector<ResultInterval>> sharded = ShardedSeries(
            relation, aggregate, attribute, cfg.shards, cfg.workers,
            cfg.batch, cfg.rebalance, cfg.split);
        TAGG_RETURN_IF_ERROR(check(cfg.name, sharded));
        // Boundary clipping preserves each instant's covering multiset,
        // so for the order-insensitive aggregates the stitched
        // scatter-gather series must match the unsharded COW series bit
        // for bit.  SUM/AVG sum the same multiset in a different tree
        // shape; the tolerance-based check() above already covered them.
        if (have_cow && (aggregate == AggregateKind::kCount ||
                         aggregate == AggregateKind::kMin ||
                         aggregate == AggregateKind::kMax)) {
          const Status identical =
              SeriesTupleIdentical(cow_series, sharded.value());
          if (!identical.ok()) {
            return Divergence(seed, info, aggregate,
                              std::string(cfg.name) + "/unsharded-equality",
                              identical.message());
          }
          if (comparisons != nullptr) ++*comparisons;
        }
      }
    }
  }

  if (options.concurrent_live_check && !relation.empty()) {
    // One aggregate per seed bounds the thread churn; the rotation covers
    // all five across any run of consecutive seeds.  Both engines face
    // the same concurrent schedule.
    const AggregateKind aggregate = kAllAggregates[seed % 5];
    for (const LiveConcurrency concurrency :
         {LiveConcurrency::kCowEpoch, LiveConcurrency::kSharedLock}) {
      const Status live = CheckLiveIndexConcurrent(
          relation, aggregate, AttributeFor(aggregate),
          seed ^ 0xD1B54A32D192ED03ull, options.relative_tolerance,
          concurrency);
      if (!live.ok()) {
        return Divergence(
            seed, info, aggregate,
            "live-index/concurrent-" +
                std::string(LiveConcurrencyToString(concurrency)),
            live.message());
      }
    }
  }

  if (options.concurrent_sharded_check && !relation.empty()) {
    // Offset the rotation so consecutive seeds exercise a different
    // aggregate here than in the unsharded concurrent check above.
    const AggregateKind aggregate = kAllAggregates[(seed + 3) % 5];
    const Status sharded = CheckShardedServiceConcurrent(
        relation, aggregate, AttributeFor(aggregate),
        seed ^ 0xA0761D6478BD642Full,
        /*shards=*/2 + static_cast<size_t>(seed % 3),
        options.relative_tolerance);
    if (!sharded.ok()) {
      return Divergence(seed, info, aggregate, "sharded/concurrent",
                        sharded.message());
    }
  }
  return Status::OK();
}

Result<DifferentialSummary> RunDifferentialRange(
    uint64_t first_seed, size_t count, const DifferentialOptions& options) {
  DifferentialSummary summary;
  for (size_t i = 0; i < count; ++i) {
    TAGG_RETURN_IF_ERROR(RunDifferentialSeed(first_seed + i, options,
                                             &summary.comparisons));
    ++summary.seeds_run;
  }
  return summary;
}

Status CheckLiveIndexConcurrent(const Relation& relation,
                                AggregateKind aggregate, size_t attribute,
                                uint64_t seed, double relative_tolerance,
                                LiveConcurrency concurrency) {
  LiveIndexOptions options;
  options.aggregate = aggregate;
  options.attribute = attribute;
  options.concurrency = concurrency;
  TAGG_ASSIGN_OR_RETURN(std::unique_ptr<LiveAggregateIndex> index,
                        LiveAggregateIndex::Create(options));

  std::atomic<bool> done{false};
  std::mutex mutex;
  Status first_error;
  const auto record = [&](const Status& status) {
    std::lock_guard<std::mutex> lock(mutex);
    if (first_error.ok()) first_error = status;
  };

  std::thread writer([&] {
    for (const Tuple& tuple : relation) {
      const Status status = index->InsertTuple(tuple);
      if (!status.ok()) {
        record(status);
        break;
      }
    }
    done.store(true, std::memory_order_release);
  });

  const auto reader = [&](uint64_t reader_seed) {
    Rng rng(reader_seed);
    uint64_t last_epoch = 0;
    bool once = false;
    while (!once || !done.load(std::memory_order_acquire)) {
      once = true;
      uint64_t epoch = 0;
      const Result<Value> at =
          index->AggregateAt(rng.Uniform(0, 2000), &epoch);
      if (!at.ok()) {
        record(at.status());
        return;
      }
      if (epoch < last_epoch) {
        record(Status::Internal("live index epoch went backwards"));
        return;
      }
      last_epoch = epoch;
      const Result<AggregateSeries> over =
          index->AggregateOver(Period::All(), /*coalesce=*/true, &epoch);
      if (!over.ok()) {
        record(over.status());
        return;
      }
      if (epoch < last_epoch) {
        record(Status::Internal("live index epoch went backwards"));
        return;
      }
      last_epoch = epoch;
      const Status partition = ValidatePartition(over.value().intervals);
      if (!partition.ok()) {
        record(Status::Internal("live snapshot is not a partition: " +
                                std::string(partition.message())));
        return;
      }
    }
  };
  std::thread reader_a(reader, seed * 2 + 1);
  std::thread reader_b(reader, seed * 2 + 2);
  writer.join();
  reader_a.join();
  reader_b.join();
  {
    std::lock_guard<std::mutex> lock(mutex);
    TAGG_RETURN_IF_ERROR(first_error);
  }

  AggregateOptions ref;
  ref.aggregate = aggregate;
  ref.attribute = attribute;
  ref.algorithm = AlgorithmKind::kReference;
  ref.coalesce_equal_values = true;
  TAGG_ASSIGN_OR_RETURN(AggregateSeries expected,
                        ComputeTemporalAggregate(relation, ref));
  TAGG_ASSIGN_OR_RETURN(AggregateSeries actual,
                        index->AggregateOver(Period::All(),
                                             /*coalesce=*/true));
  std::vector<ResultInterval> conditioning;
  const std::vector<ResultInterval>* condition = nullptr;
  if (aggregate == AggregateKind::kSum || aggregate == AggregateKind::kAvg) {
    TAGG_ASSIGN_OR_RETURN(conditioning,
                          ComputeConditioningSeries(relation, attribute));
    condition = &conditioning;
  }
  return CompareSeries(expected.intervals, actual.intervals, aggregate,
                       relative_tolerance, condition);
}

Status CheckShardedServiceConcurrent(const Relation& relation,
                                     AggregateKind aggregate,
                                     size_t attribute, uint64_t seed,
                                     size_t shards,
                                     double relative_tolerance) {
  TAGG_ASSIGN_OR_RETURN(Catalog catalog, ShardedCatalogFor(relation));
  shard::ShardedServiceOptions options;
  options.shards = shards;
  options.hot_window = Period(0, 63);
  shard::ShardedLiveService service(options);
  TAGG_RETURN_IF_ERROR(
      service.RegisterIndex(catalog, relation.name(), aggregate,
                            AttributeNameFor(relation, attribute)));

  std::atomic<bool> done{false};
  std::mutex mutex;
  Status first_error;
  const auto record = [&](const Status& status) {
    std::lock_guard<std::mutex> lock(mutex);
    if (first_error.ok()) first_error = status;
  };

  // The writer interleaves single-tuple ingests with a mid-stream
  // data-quantile rebalance and a shard split: the reader-facing
  // topology cutover is exactly the code under test.
  std::thread writer([&] {
    const size_t rebalance_at = relation.size() / 2;
    size_t ingested = 0;
    for (const Tuple& tuple : relation) {
      Status status = service.Ingest(relation.name(), tuple);
      if (status.ok() && ++ingested == rebalance_at) {
        status = service.Reshard(shards + 1);
        if (status.ok()) {
          // A quantile cut over dense starts can leave shard 0 owning a
          // single instant; an unsplittable shard is a legitimate
          // rejection, not a divergence.
          const Status split = service.SplitShard(0);
          if (!split.ok() && split.code() != StatusCode::kInvalidArgument) {
            status = split;
          }
        }
      }
      if (!status.ok()) {
        record(status);
        break;
      }
    }
    done.store(true, std::memory_order_release);
  });

  const auto reader = [&](uint64_t reader_seed) {
    Rng rng(reader_seed);
    bool once = false;
    while (!once || !done.load(std::memory_order_acquire)) {
      once = true;
      // Point probes route to exactly one owning shard and must succeed
      // whichever topology version they land on.  Epochs are NOT
      // asserted monotone: a rebalance restarts the shard instances.
      const Result<Value> at = service.AggregateAt(
          relation.name(), aggregate, attribute, rng.Uniform(0, 2000));
      if (!at.ok()) {
        record(at.status());
        return;
      }
      const Result<AggregateSeries> over = service.AggregateOver(
          relation.name(), aggregate, attribute, Period::All(),
          /*coalesce=*/true);
      if (!over.ok()) {
        record(over.status());
        return;
      }
      const Status partition = ValidatePartition(over.value().intervals);
      if (!partition.ok()) {
        record(Status::Internal("sharded snapshot is not a partition: " +
                                std::string(partition.message())));
        return;
      }
    }
  };
  std::thread reader_a(reader, seed * 2 + 1);
  std::thread reader_b(reader, seed * 2 + 2);
  writer.join();
  reader_a.join();
  reader_b.join();
  {
    std::lock_guard<std::mutex> lock(mutex);
    TAGG_RETURN_IF_ERROR(first_error);
  }

  TAGG_RETURN_IF_ERROR(service.Flush());
  AggregateOptions ref;
  ref.aggregate = aggregate;
  ref.attribute = attribute;
  ref.algorithm = AlgorithmKind::kReference;
  ref.coalesce_equal_values = true;
  TAGG_ASSIGN_OR_RETURN(AggregateSeries expected,
                        ComputeTemporalAggregate(relation, ref));
  TAGG_ASSIGN_OR_RETURN(
      AggregateSeries actual,
      service.AggregateOver(relation.name(), aggregate, attribute,
                            Period::All(), /*coalesce=*/true));
  std::vector<ResultInterval> conditioning;
  const std::vector<ResultInterval>* condition = nullptr;
  if (aggregate == AggregateKind::kSum || aggregate == AggregateKind::kAvg) {
    TAGG_ASSIGN_OR_RETURN(conditioning,
                          ComputeConditioningSeries(relation, attribute));
    condition = &conditioning;
  }
  return CompareSeries(expected.intervals, actual.intervals, aggregate,
                       relative_tolerance, condition);
}

}  // namespace testing
}  // namespace tagg
