// Differential-testing harness: every algorithm against the oracle.
//
// The library carries eight ways to evaluate the same temporal aggregate
// (five batch algorithms, the brute-force reference, the partitioned
// parallel evaluation with two kernels, and the live serving index).  They
// must all describe the same step function over the time-line.  This
// harness generates seeded randomized workloads — biased toward the
// adversarial shapes that have historically broken implementations: empty
// relations, single tuples, periods touching kOrigin/kForever, 1-chronon
// point periods, duplicate start times, near-k-order-violating streams,
// and mixed-magnitude values (1e17 next to 1.0) — runs each through every
// algorithm/configuration, and diffs the coalesced constant-interval
// series.
//
// Float-comparison policy (also documented in docs/TESTING.md):
//
//   * Series are compared as *step functions*: both results are walked
//     over the merged set of interval boundaries, so two series that
//     coalesce the same function differently still compare equal.
//   * COUNT is compared exactly (integer states end to end).
//   * MIN/MAX are compared exactly: every implementation selects one of
//     the input doubles, never computes a new one.
//   * SUM/AVG are compared with a relative tolerance scaled by the
//     interval's *conditioning*,
//         |a - b| <= tol * max(1, |a|, |b|, C(I)),   tol = 1e-9,
//     where C(I) is the sum of |input| over the tuples overlapping
//     interval I (computed by an auxiliary reference pass over the
//     |value|-transformed relation).  Summation order differs between
//     algorithms and IEEE addition is not associative, so on an interval
//     where +1e17 and -1e17 cancel, any two correct implementations may
//     legitimately differ by ~ulp(1e17); scaling by C(I) admits exactly
//     that.  What the policy still rejects — by design — is error leaking
//     in from tuples that do NOT overlap the interval: a running sweep
//     accumulator that lost a small addend under a large magnitude keeps
//     the damage after the large tuple retires, where C(I) is small
//     again.  The sweep kernel uses Neumaier-compensated accumulation
//     (core/partitioned_agg.cc) precisely to stay inside this policy.
//   * NULL (empty interval) must match exactly: an algorithm reporting
//     0.0 where another reports NULL is a bug, not a rounding artifact.
//
// On divergence every entry point returns a Status whose message names the
// reproducing seed, the workload shape, the aggregate, and the offending
// configuration — paste the seed into RunDifferentialSeed() to replay.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/aggregates.h"
#include "live/live_index.h"
#include "temporal/relation.h"
#include "util/result.h"

namespace tagg {
namespace testing {

/// Tuning knobs for one differential run.
struct DifferentialOptions {
  /// Relative tolerance for SUM/AVG (see the file comment).
  double relative_tolerance = 1e-9;

  /// Include the partitioned evaluation (workers × spill × kernel grid).
  bool include_partitioned = true;

  /// Include the pruned columnar stored-relation scan (core/column_scan):
  /// each seed's relation is written to a temporary TCR1 column file and
  /// scanned under a grid of pruning on/off × summary fast path × worker
  /// configurations.  Every series is coalesced and diffed against the
  /// reference; COUNT/MIN/MAX must additionally be *tuple-identical* to
  /// the (coalesced) reference, because block summaries and decoded
  /// events contribute exact values for those aggregates.  SUM/AVG keep
  /// the tolerance policy — the summary fast path adds block sums in a
  /// different order than the reference tree.
  bool include_column_scan = true;

  /// Include the live index (sequential insert + AggregateOver).  Both
  /// concurrency engines run — each is diffed against the reference, and
  /// the COW engine's series must additionally be *tuple-identical* (no
  /// tolerance) to the locked engine's, since both apply the same Add
  /// sequence in the same order; a batched COW load (InsertBatch) must be
  /// tuple-identical too.
  bool include_live_index = true;

  /// Additionally probe one LiveAggregateIndex from concurrent reader
  /// threads while a writer inserts, asserting epoch monotonicity and
  /// partition validity of every snapshot, then diff the final series.
  bool concurrent_live_check = true;

  /// Include the sharded live service (src/shard): the relation is loaded
  /// through a ShardedLiveService under a grid of shard-count × worker ×
  /// ingest-path × rebalance/split configurations, and every
  /// scatter-gathered series is diffed against the reference.  Clipping
  /// at the shard boundaries preserves each instant's covering multiset,
  /// so COUNT/MIN/MAX must additionally be *tuple-identical* to the
  /// unsharded COW live series; SUM/AVG keep the tolerance policy because
  /// the per-shard summation tree differs from the unsharded one.
  bool include_sharded = true;

  /// Additionally drive one ShardedLiveService from concurrent reader
  /// threads while a writer ingests and rebalances mid-stream, asserting
  /// partition validity of every snapshot, then diff the final series.
  /// Snapshot epochs are deliberately NOT asserted monotone here: a
  /// rebalance publishes fresh shard instances whose epochs restart.
  bool concurrent_sharded_check = true;
};

/// What one seed generated, for diagnostics.
struct WorkloadInfo {
  std::string shape;   ///< human-readable shape name ("point-periods", ...)
  size_t tuples = 0;
};

/// Aggregate outcome of a multi-seed sweep.
struct DifferentialSummary {
  size_t seeds_run = 0;
  size_t comparisons = 0;  ///< series pairs diffed (all matched)
};

/// Deterministically generates the seed's workload relation (Employed
/// schema, integer salary attribute drawn from an exactly-representable
/// palette including ±1e17).  Same seed, same relation — the reproducing
/// seed printed on divergence replays the exact workload.
Result<Relation> GenerateDifferentialRelation(uint64_t seed,
                                              WorkloadInfo* info = nullptr);

/// Compares two series as step functions under the documented policy.
/// `expected` is treated as the oracle side in messages.  Both series must
/// partition [kOrigin, kForever].  `conditioning`, when non-null, is the
/// per-interval C(I) series (SUM of |input| via the reference algorithm —
/// see the file comment); without it the SUM/AVG scale falls back to
/// max(1, |a|, |b|), which is only sound for workloads without
/// catastrophic cancellation.
Status CompareSeries(const std::vector<ResultInterval>& expected,
                     const std::vector<ResultInterval>& actual,
                     AggregateKind kind, double relative_tolerance = 1e-9,
                     const std::vector<ResultInterval>* conditioning =
                         nullptr);

/// Computes the conditioning series C(I) for `relation`'s attribute: the
/// reference SUM over the relation with every input replaced by its
/// absolute value.
Result<std::vector<ResultInterval>> ComputeConditioningSeries(
    const Relation& relation, size_t attribute);

/// Generates the seed's workload and diffs every algorithm/configuration
/// against the reference, for all five aggregates.  `comparisons`, when
/// non-null, accumulates the number of series pairs diffed.
Status RunDifferentialSeed(uint64_t seed,
                           const DifferentialOptions& options = {},
                           size_t* comparisons = nullptr);

/// Runs seeds [first_seed, first_seed + count); stops at the first
/// divergence, returning its reproducing Status.
Result<DifferentialSummary> RunDifferentialRange(
    uint64_t first_seed, size_t count,
    const DifferentialOptions& options = {});

/// Drives one live index with a writer thread inserting `relation`'s
/// tuples while reader threads probe point/range queries on snapshots,
/// then diffs the final series against the reference.  Used by
/// RunDifferentialSeed (which runs it once per engine) and directly by
/// the live-index tests.
Status CheckLiveIndexConcurrent(
    const Relation& relation, AggregateKind aggregate, size_t attribute,
    uint64_t seed, double relative_tolerance = 1e-9,
    LiveConcurrency concurrency = LiveConcurrency::kCowEpoch);

/// Drives one ShardedLiveService with a writer thread ingesting
/// `relation`'s tuples — triggering a data-quantile Reshard plus a
/// SplitShard mid-stream — while reader threads scatter-gather full
/// series and point probes across the topology cutover, asserting every
/// snapshot partitions the time-line, then diffs the final series against
/// the reference.  Used by RunDifferentialSeed and directly by the shard
/// tests (the TSan job runs both).
Status CheckShardedServiceConcurrent(const Relation& relation,
                                     AggregateKind aggregate,
                                     size_t attribute, uint64_t seed,
                                     size_t shards,
                                     double relative_tolerance = 1e-9);

}  // namespace testing
}  // namespace tagg
