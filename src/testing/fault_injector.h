// FaultInjector: deterministic fault injection at the storage I/O seams.
//
// Production code cannot prove its error paths by running them — disks do
// not fail on demand.  This injector lets a test arm "fail the Nth
// operation matching <site>" and then drive a whole evaluation through it,
// asserting that the injected failure surfaces as a clean Status (no
// crash, no hang, no leaked temp files, no abandoned tree nodes).
//
// The injector is compiled into the storage layer unconditionally but is
// zero-cost while disarmed: every instrumented seam performs one relaxed
// atomic load and branches past the slow path.  Only tests ever arm it.
//
// Instrumented sites (substring-matched against the armed pattern):
//   spill_file.create        SpillFile::Create
//   spill_file.append        SpillFile::Append
//   spill_file.read          SpillFile::Reader::Fill
//   heap_file.create         HeapFile::Create
//   heap_file.open           HeapFile::Open
//   heap_file.append         HeapFile::AppendRecord
//   heap_file.read           HeapFile::ReadPage
//   heap_file.sync           HeapFile::Sync
//   buffer_pool.fetch        BufferPool::Fetch (miss path)
//   external_sort.run        ExternalSortByTime run generation /
//                            PodRunSorter::FlushRun
//   temporal_column.encode   EncodeTemporalBlock (compressed spill write)
//   temporal_column.decode   DecodeTemporalBlock (compressed spill replay)
//   column_relation.create   ColumnRelationWriter::Create / Open's fopen
//   column_relation.append   ColumnRelationWriter::FlushBlock
//   column_relation.footer   footer/trailer write in Finish, footer read
//                            in ColumnRelation::Open
//   column_relation.read     ColumnRelationReader::ReadBlock /
//                            ColumnRelation::NewReader
//
// Arming is process-global and not meant for concurrent arm/disarm; the
// instrumented seams themselves may be hit from any thread (the armed
// counter is advanced under a mutex).

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "util/status.h"

namespace tagg {
namespace testing {

class FaultInjector {
 public:
  /// The process-wide injector every instrumented seam consults.
  static FaultInjector& Global();

  /// Arms the injector: the `nth` (1-based) operation whose site name
  /// contains `site_pattern` fails with an IOError naming the site.
  /// Subsequent matching operations succeed again (single-shot fault),
  /// mirroring a transient device error.  Resets the hit/injected
  /// counters.
  void Arm(std::string site_pattern, uint64_t nth);

  /// Disarms; every seam returns to the zero-cost fast path.
  void Disarm();

  /// True while armed (relaxed; the fast-path gate).
  bool enabled() const { return armed_.load(std::memory_order_relaxed); }

  /// Operations that matched the armed pattern since Arm().
  uint64_t hits() const;

  /// Faults injected since Arm() (0 or 1 for a single-shot arm).
  uint64_t injected() const;

  /// Called by instrumented seams while armed; counts the hit and returns
  /// the injected error when this is the fated operation.
  Status Hit(std::string_view site);

 private:
  FaultInjector() = default;

  std::atomic<bool> armed_{false};
  mutable std::mutex mutex_;
  std::string pattern_;
  uint64_t nth_ = 0;
  uint64_t hits_ = 0;
  uint64_t injected_ = 0;
};

/// The seam hook: a single relaxed load while disarmed.
inline Status MaybeInjectFault(std::string_view site) {
  FaultInjector& injector = FaultInjector::Global();
  if (!injector.enabled()) return Status::OK();
  return injector.Hit(site);
}

}  // namespace testing
}  // namespace tagg

/// Propagates an injected fault out of an instrumented seam.
#define TAGG_INJECT_FAULT(site) \
  TAGG_RETURN_IF_ERROR(::tagg::testing::MaybeInjectFault(site))
