// Abstract syntax of the TSQL2-flavored query language.
//
// The language covers the paper's Section 2 query shapes: temporal
// aggregates grouped by instant (the TSQL2 default) or by span, optionally
// partitioned by attribute values (the GROUP BY clause), over a single
// relation with an optional row predicate:
//
//   SELECT COUNT(name) FROM employed
//   SELECT dept, AVG(salary) FROM employed GROUP BY dept
//   SELECT MAX(salary) FROM employed WHERE salary >= 40000
//   SELECT COUNT(*) FROM employed GROUP BY SPAN 100 FROM 0 TO 999

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/aggregates.h"
#include "temporal/instant.h"
#include "temporal/period.h"
#include "temporal/value.h"

namespace tagg {

/// Comparison operators in WHERE predicates.
enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view CompareOpToString(CompareOp op);

/// A boolean predicate tree over `column op literal` comparisons and
/// `VALID OVERLAPS a TO b` temporal selections (the query's valid clause,
/// Section 4.1).
struct Predicate {
  enum class Kind : uint8_t {
    kComparison,
    kValidOverlaps,
    kAnd,
    kOr,
    kNot,
  };

  Kind kind = Kind::kComparison;

  // kComparison:
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value literal;

  // kValidOverlaps:
  Period period;

  // kAnd / kOr use both children; kNot uses lhs only.
  std::unique_ptr<Predicate> lhs;
  std::unique_ptr<Predicate> rhs;

  std::string ToString() const;
};

/// One item of the select list: a plain column (which must also appear in
/// GROUP BY) or an aggregate call.
struct SelectItem {
  bool is_aggregate = false;
  AggregateKind aggregate = AggregateKind::kCount;
  /// The referenced column; empty for COUNT(*).
  std::string column;

  std::string ToString() const;
};

/// The temporal-grouping clause.  TSQL2's default groups by instant.
struct TemporalGrouping {
  enum class Kind : uint8_t { kInstant, kSpan };
  Kind kind = Kind::kInstant;

  // kSpan:
  Instant span_width = 0;
  /// Explicit window bounds (SPAN w FROM a TO b); when absent the
  /// analyzer derives the window from the relation's lifespan.
  bool has_window = false;
  Instant window_start = 0;
  Instant window_end = 0;
};

/// A parsed SELECT statement.
struct SelectStmt {
  /// EXPLAIN prefix: plan the query but do not execute it.
  bool explain = false;
  /// EXPLAIN ANALYZE prefix: execute the query and report the profiled
  /// operator tree (span timings, tuple counts, tree/arena stats).
  bool analyze = false;
  std::vector<SelectItem> items;
  std::string relation;
  std::unique_ptr<Predicate> where;  // null when absent
  std::vector<std::string> group_by;
  TemporalGrouping temporal;

  std::string ToString() const;
};

}  // namespace tagg
