#include "query/executor.h"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "core/column_scan.h"
#include "core/multi_agg.h"
#include "core/partitioned_agg.h"
#include "core/span_agg.h"
#include "storage/column_relation.h"
#include "obs/metrics.h"
#include "query/parser.h"
#include "util/env.h"
#include "util/str.h"

namespace tagg {
namespace {

Result<bool> EvalPredicate(const BoundPredicate& pred, const Tuple& tuple) {
  switch (pred.kind) {
    case Predicate::Kind::kComparison: {
      const Value& v = tuple.value(pred.attribute);
      // SQL three-valued logic collapsed to two: comparisons against NULL
      // are false.
      if (v.is_null()) return false;
      TAGG_ASSIGN_OR_RETURN(int cmp, v.Compare(pred.literal));
      switch (pred.op) {
        case CompareOp::kEq:
          return cmp == 0;
        case CompareOp::kNe:
          return cmp != 0;
        case CompareOp::kLt:
          return cmp < 0;
        case CompareOp::kLe:
          return cmp <= 0;
        case CompareOp::kGt:
          return cmp > 0;
        case CompareOp::kGe:
          return cmp >= 0;
      }
      return Status::Internal("unknown comparison op");
    }
    case Predicate::Kind::kValidOverlaps:
      return tuple.valid().Overlaps(pred.period);
    case Predicate::Kind::kAnd: {
      TAGG_ASSIGN_OR_RETURN(bool l, EvalPredicate(*pred.lhs, tuple));
      if (!l) return false;
      return EvalPredicate(*pred.rhs, tuple);
    }
    case Predicate::Kind::kOr: {
      TAGG_ASSIGN_OR_RETURN(bool l, EvalPredicate(*pred.lhs, tuple));
      if (l) return true;
      return EvalPredicate(*pred.rhs, tuple);
    }
    case Predicate::Kind::kNot: {
      TAGG_ASSIGN_OR_RETURN(bool l, EvalPredicate(*pred.lhs, tuple));
      return !l;
    }
  }
  return Status::Internal("unknown predicate kind");
}

/// Deterministic ordering of group keys for stable result order.
struct GroupKeyLess {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      auto cmp = a[i].Compare(b[i]);
      const int c = cmp.ok() ? cmp.value() : 0;
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

/// The "no tuples here" value of an aggregate, used when dropping empty
/// rows: COUNT() of an empty set is 0, the others are NULL.
Value EmptyValueOf(AggregateKind kind) {
  return kind == AggregateKind::kCount ? Value::Int(0) : Value::Null();
}

obs::Counter& QueriesTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_query_executions_total", "SELECT statements executed");
  return c;
}

obs::Counter& LiveRoutedTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_query_live_routed_total",
      "queries answered from a resident live index instead of the batch "
      "path");
  return c;
}

obs::Histogram& QuerySeconds() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "tagg_query_seconds", "end-to-end ExecuteSelect latency");
  return h;
}

obs::Counter& PartitionedRoutedTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_query_partitioned_routed_total",
      "queries evaluated through the parallel partitioned path");
  return c;
}

obs::Counter& ShardRoutedTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_query_shard_routed_total",
      "queries answered scatter-gather by the sharded live index");
  return c;
}

obs::Counter& ColumnScanRoutedTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tagg_query_column_scan_routed_total",
      "queries served by the pruned scan over a columnar backing");
  return c;
}

/// Resolves the worker count: explicit option, else the TAGG_WORKERS
/// environment variable (hardened: garbage, negatives, and huge values
/// warn and clamp — util/env.h), else 1 (sequential).
size_t ResolveWorkers(size_t requested) {
  if (requested > 0) return requested;
  return ResolveCountEnv("TAGG_WORKERS", 1, 256);
}

}  // namespace

std::string QueryResult::ToString(size_t max_rows) const {
  std::vector<std::string> headers = column_names;
  headers.push_back("VALID");
  std::vector<std::vector<std::string>> cells;
  const size_t shown = std::min(max_rows, rows.size());
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> row;
    for (const Value& v : rows[r].values) row.push_back(v.ToString());
    row.push_back(rows[r].valid.ToString());
    cells.push_back(std::move(row));
  }
  std::vector<size_t> widths(headers.size());
  for (size_t c = 0; c < headers.size(); ++c) {
    widths[c] = headers[c].size();
    for (const auto& row : cells) widths[c] = std::max(widths[c],
                                                       row[c].size());
  }
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(widths[c] - row[c].size() + 2, ' ');
    }
    out += "\n";
  };
  append_row(headers);
  for (size_t c = 0; c < headers.size(); ++c) {
    out.append(widths[c], '-');
    out.append(2, ' ');
  }
  out += "\n";
  for (const auto& row : cells) append_row(row);
  if (shown < rows.size()) {
    out += "... (" + std::to_string(rows.size() - shown) + " more rows)\n";
  }
  return out;
}

std::string QueryResult::ExplainAnalyzeString() const {
  std::string out = "Plan: ";
  out += AlgorithmKindToString(plan.algorithm);
  if (plan.algorithm == AlgorithmKind::kKOrderedTree) {
    out += " (k=" + std::to_string(plan.k) +
           (plan.presort ? ", presort" : "") + ")";
  }
  out += "\n  " + plan.rationale + "\n";
  if (profile != nullptr) {
    out += profile->Render();
  }
  return out;
}

Result<QueryResult> ExecuteSelect(const BoundQuery& query,
                                  const ExecutorOptions& options) {
  const Relation& relation = *query.relation;
  QueriesTotal().Increment();
  obs::ScopedLatencyTimer latency_timer(QuerySeconds());
  obs::QueryProfile* profile = options.profile;
  obs::Span exec_span(profile, "execute");
  exec_span.Annotate("relation", relation.name());
  exec_span.Annotate("input_tuples", relation.size());

  // 0a. Sharded routing: the same eligibility gate as live routing below,
  // answered scatter-gather across the shard topology (src/shard) when
  // every shard has absorbed exactly the relation's current contents.
  if (options.sharded_service != nullptr && query.where == nullptr &&
      query.group_attributes.empty() && query.aggregates.size() == 1 &&
      query.temporal.kind == TemporalGrouping::Kind::kInstant) {
    const BoundAggregate& agg = query.aggregates[0];
    const shard::ShardedLiveService& sharded = *options.sharded_service;
    if (sharded.ServesFresh(relation, agg.kind, agg.attribute)) {
      QueryResult routed;
      routed.analyzed = query.analyze;
      for (const BoundOutputColumn& col : query.columns) {
        routed.column_names.push_back(col.name);
      }
      routed.plan.algorithm = AlgorithmKind::kLiveIndex;
      routed.plan.rationale =
          "served scatter-gather from the sharded live index for '" +
          relation.name() + "' (" + std::to_string(sharded.num_shards()) +
          " shard(s), topology v" +
          std::to_string(sharded.topology_version()) + ")";
      if (query.explain && !query.analyze) return routed;
      ShardRoutedTotal().Increment();
      obs::Span probe_span(profile, "shard_scatter");
      probe_span.Annotate("shards", sharded.num_shards());
      uint64_t epoch = 0;
      TAGG_ASSIGN_OR_RETURN(
          AggregateSeries series,
          sharded.AggregateOver(relation.name(), agg.kind, agg.attribute,
                                Period::All(), options.coalesce, &epoch));
      probe_span.Annotate("intervals", series.intervals.size());
      probe_span.End();
      const Value empty = EmptyValueOf(agg.kind);
      routed.rows.reserve(series.intervals.size());
      for (ResultInterval& ri : series.intervals) {
        if (options.drop_empty && ri.value == empty) continue;
        routed.rows.push_back({{std::move(ri.value)}, ri.period});
      }
      return routed;
    }
  }

  // 0. Live-index routing: when the service holds a registered index that
  // is exactly as fresh as the relation, a single-aggregate instant-grouped
  // query without WHERE or GROUP BY is answered from the resident tree
  // instead of rebuilding one (src/live).  Anything else falls through to
  // the batch path below.
  if (options.live_service != nullptr && query.where == nullptr &&
      query.group_attributes.empty() && query.aggregates.size() == 1 &&
      query.temporal.kind == TemporalGrouping::Kind::kInstant) {
    const BoundAggregate& agg = query.aggregates[0];
    const LiveAggregateIndex* index =
        options.live_service->Find(relation.name(), agg.kind, agg.attribute);
    if (index != nullptr && index->epoch() == relation.size()) {
      QueryResult routed;
      routed.analyzed = query.analyze;
      for (const BoundOutputColumn& col : query.columns) {
        routed.column_names.push_back(col.name);
      }
      routed.plan.algorithm = AlgorithmKind::kLiveIndex;
      routed.plan.rationale =
          "served from the live index registered for '" + relation.name() +
          "' at epoch " + std::to_string(index->epoch()) +
          " (no per-query tree rebuild)";
      if (query.explain && !query.analyze) return routed;
      LiveRoutedTotal().Increment();
      obs::Span probe_span(profile, "live_probe");
      probe_span.Annotate("epoch", index->epoch());
      probe_span.Annotate(
          "engine", LiveConcurrencyToString(index->options().concurrency));
      uint64_t epoch = 0;
      TAGG_ASSIGN_OR_RETURN(
          AggregateSeries series,
          index->AggregateOver(Period::All(), options.coalesce, &epoch));
      probe_span.Annotate("intervals", series.intervals.size());
      probe_span.End();
      const Value empty = EmptyValueOf(agg.kind);
      routed.rows.reserve(series.intervals.size());
      for (ResultInterval& ri : series.intervals) {
        if (options.drop_empty && ri.value == empty) continue;
        routed.rows.push_back({{std::move(ri.value)}, ri.period});
      }
      return routed;
    }
  }

  // 0b. Columnar pruned-scan routing: when the catalog attached a columnar
  // backing file that is exactly as fresh as the relation, the same class
  // of query the live tiers serve (single aggregate, instant grouping, no
  // WHERE or GROUP BY) is answered by the pruned scan (core/column_scan)
  // over the stored blocks — zone-map skipping, footer-summary
  // composition, and decode only where needed — instead of re-aggregating
  // the in-memory tuples.
  if (query.column_backing != nullptr && query.where == nullptr &&
      query.group_attributes.empty() && query.aggregates.size() == 1 &&
      query.temporal.kind == TemporalGrouping::Kind::kInstant &&
      (!options.force_algorithm.has_value() ||
       *options.force_algorithm == AlgorithmKind::kColumnScan)) {
    const BoundAggregate& agg = query.aggregates[0];
    // Column files store a single value column; COUNT(*) is also fine
    // because stored files cannot contain NULLs.
    const bool attribute_ok =
        agg.attribute == kColumnValueAttribute ||
        (agg.kind == AggregateKind::kCount &&
         agg.attribute == AggregateOptions::kNoAttribute);
    auto backing = std::dynamic_pointer_cast<const ColumnRelation>(
        query.column_backing);
    if (attribute_ok && backing != nullptr &&
        backing->row_count() == relation.size()) {
      QueryResult routed;
      routed.analyzed = query.analyze;
      for (const BoundOutputColumn& col : query.columns) {
        routed.column_names.push_back(col.name);
      }
      routed.plan.algorithm = AlgorithmKind::kColumnScan;
      routed.plan.rationale =
          "pruned scan over the columnar backing '" + backing->path() +
          "' (" + std::to_string(backing->blocks().size()) +
          " block(s); zone-map skipping + footer summaries)";
      if (query.explain && !query.analyze) return routed;
      ColumnScanRoutedTotal().Increment();
      obs::Span scan_span(profile, "column_scan");
      ColumnScanOptions copts;
      copts.aggregate = agg.kind;
      copts.attribute = agg.attribute;
      copts.window = Period::All();
      copts.parallel_workers = ResolveWorkers(options.parallel_workers);
      ColumnScanStats scan_stats;
      TAGG_ASSIGN_OR_RETURN(
          AggregateSeries series,
          ComputeColumnScanAggregate(*backing, copts, &scan_stats));
      scan_span.Annotate("blocks_total", scan_stats.blocks_total);
      scan_span.Annotate("blocks_skipped", scan_stats.blocks_skipped);
      scan_span.Annotate("blocks_summarized", scan_stats.blocks_summarized);
      scan_span.Annotate("blocks_decoded", scan_stats.blocks_decoded);
      scan_span.Annotate("rows_decoded", scan_stats.rows_decoded);
      scan_span.Annotate("intervals", series.intervals.size());
      scan_span.End();
      const Value empty = EmptyValueOf(agg.kind);
      routed.rows.reserve(series.intervals.size());
      for (ResultInterval& ri : series.intervals) {
        if (options.drop_empty && ri.value == empty) continue;
        if (options.coalesce && !routed.rows.empty() &&
            routed.rows.back().values[0] == ri.value &&
            routed.rows.back().valid.MeetsBefore(ri.period)) {
          routed.rows.back().valid = Period(
              routed.rows.back().valid.start(), ri.period.end());
          continue;
        }
        routed.rows.push_back({{std::move(ri.value)}, ri.period});
      }
      return routed;
    }
    if (options.force_algorithm == AlgorithmKind::kColumnScan) {
      return Status::InvalidArgument(
          "column scan was forced but the relation's columnar backing is "
          "missing, stale, or the aggregate does not target the stored "
          "value column");
    }
  } else if (options.force_algorithm == AlgorithmKind::kColumnScan) {
    return Status::InvalidArgument(
        "column scan requires an attached columnar backing and a "
        "single-aggregate instant-grouped query without WHERE or GROUP "
        "BY");
  }

  // 1. Filter.
  obs::Span filter_span(profile, "filter");
  Relation filtered(relation.schema(), relation.name());
  if (query.where == nullptr) {
    filtered = relation;
  } else {
    for (const Tuple& t : relation) {
      TAGG_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*query.where, t));
      if (keep) filtered.AppendUnchecked(t);
    }
  }
  filter_span.Annotate("tuples_in", relation.size());
  filter_span.Annotate("tuples_out", filtered.size());
  filter_span.End();

  // 2. Plan (Section 6.3 rules, unless overridden).
  obs::Span plan_span(profile, "plan");
  PlannerInput planner_input;
  planner_input.num_tuples = filtered.size();
  planner_input.sorted =
      query.stats.known_sorted || filtered.IsSortedByTime();
  planner_input.declared_k = query.stats.declared_k;
  planner_input.memory_budget_bytes = options.memory_budget_bytes;
  if (query.temporal.kind == TemporalGrouping::Kind::kSpan &&
      query.temporal.has_window) {
    const Instant width =
        query.temporal.window_end - query.temporal.window_start + 1;
    planner_input.expected_result_intervals = static_cast<size_t>(
        (width + query.temporal.span_width - 1) / query.temporal.span_width);
  }
  Plan plan = ChoosePlan(planner_input);
  if (options.force_algorithm.has_value()) {
    plan.algorithm = *options.force_algorithm;
    plan.rationale = "forced by executor options";
  }
  // Parallel partitioned routing: with workers > 1 (from the option or
  // TAGG_WORKERS), a single-aggregate instant-grouped query is evaluated
  // region by region with parallel routing and builds.  A forced
  // algorithm other than kPartitioned is respected as-is.
  const size_t workers = ResolveWorkers(options.parallel_workers);
  const bool partitioned_eligible =
      query.aggregates.size() == 1 &&
      query.temporal.kind == TemporalGrouping::Kind::kInstant;
  if (partitioned_eligible &&
      (options.force_algorithm == AlgorithmKind::kPartitioned ||
       (workers > 1 && !options.force_algorithm.has_value()))) {
    plan.algorithm = AlgorithmKind::kPartitioned;
    plan.rationale = "parallel partitioned evaluation with " +
                     std::to_string(workers) +
                     " worker(s): sharded routing, per-region builds, "
                     "stitched result";
  }
  if (plan.algorithm == AlgorithmKind::kPartitioned &&
      !partitioned_eligible) {
    return Status::InvalidArgument(
        "partitioned evaluation requires a single aggregate with instant "
        "grouping; span grouping and fused multi-aggregates use the "
        "sequential algorithms");
  }
  plan_span.Annotate("algorithm", AlgorithmKindToString(plan.algorithm));
  plan_span.Annotate("workers", workers);
  if (plan.algorithm == AlgorithmKind::kKOrderedTree) {
    plan_span.Annotate("k", plan.k);
  }
  plan_span.End();

  // EXPLAIN: report the chosen plan without executing.  EXPLAIN ANALYZE
  // falls through and executes so the profile carries real timings.
  if (query.explain && !query.analyze) {
    QueryResult explained;
    explained.plan = plan;
    for (const BoundOutputColumn& col : query.columns) {
      explained.column_names.push_back(col.name);
    }
    return explained;
  }

  // 3. Group by value (Section 4.1's aggregation sets), preserving tuple
  // order within each group so sortedness properties survive.
  obs::Span group_span(profile, "group");
  std::map<std::vector<Value>, std::vector<size_t>, GroupKeyLess> groups;
  for (size_t i = 0; i < filtered.size(); ++i) {
    std::vector<Value> key;
    key.reserve(query.group_attributes.size());
    for (size_t attr : query.group_attributes) {
      key.push_back(filtered.tuple(i).value(attr));
    }
    groups[std::move(key)].push_back(i);
  }
  group_span.Annotate("groups", groups.size());
  group_span.End();

  // Span grouping shares one window across groups: explicit bounds, or the
  // filtered relation's lifespan.
  Period span_window;
  if (query.temporal.kind == TemporalGrouping::Kind::kSpan) {
    if (query.temporal.has_window) {
      TAGG_ASSIGN_OR_RETURN(span_window,
                            Period::Make(query.temporal.window_start,
                                         query.temporal.window_end));
    } else {
      if (filtered.empty()) {
        return Status::InvalidArgument(
            "span grouping without FROM/TO requires a non-empty relation "
            "to derive the window");
      }
      TAGG_ASSIGN_OR_RETURN(span_window, filtered.Lifespan());
    }
  }

  QueryResult result;
  result.plan = plan;
  result.analyzed = query.analyze;
  for (const BoundOutputColumn& col : query.columns) {
    result.column_names.push_back(col.name);
  }

  // 4. Aggregate each group and zip the per-aggregate series.
  obs::Span agg_span(profile, "aggregate");
  ExecutionStats agg_stats;  // accumulated across groups
  agg_stats.relation_scans = 0;
  size_t intervals_total = 0;
  for (const auto& [key, indices] : groups) {
    Relation group_relation(filtered.schema(), filtered.name());
    group_relation.Reserve(indices.size());
    for (size_t i : indices) {
      group_relation.AppendUnchecked(filtered.tuple(i));
    }

    MultiSeries zipped;
    if (query.temporal.kind == TemporalGrouping::Kind::kSpan) {
      // Span grouping: fixed buckets, one series per aggregate, zipped
      // (boundaries are the spans, identical by construction).
      std::vector<AggregateSeries> per_aggregate;
      per_aggregate.reserve(query.aggregates.size());
      for (const BoundAggregate& agg : query.aggregates) {
        SpanAggregateOptions span_options;
        span_options.aggregate = agg.kind;
        span_options.attribute = agg.attribute;
        span_options.window = span_window;
        span_options.span_width = query.temporal.span_width;
        TAGG_ASSIGN_OR_RETURN(
            AggregateSeries series,
            ComputeSpanAggregate(group_relation, span_options));
        agg_stats.work_steps += series.stats.work_steps;
        agg_stats.nodes_allocated += series.stats.nodes_allocated;
        per_aggregate.push_back(std::move(series));
      }
      for (size_t i = 0; i < per_aggregate[0].intervals.size(); ++i) {
        zipped.periods.push_back(per_aggregate[0].intervals[i].period);
        std::vector<Value> row;
        row.reserve(per_aggregate.size());
        for (const AggregateSeries& s : per_aggregate) {
          row.push_back(s.intervals[i].value);
        }
        zipped.values.push_back(std::move(row));
      }
    } else if (plan.algorithm == AlgorithmKind::kPartitioned) {
      // Parallel partitioned path: one aggregate, evaluated region by
      // region with `workers` threads in both phases.
      PartitionedRoutedTotal().Increment();
      const BoundAggregate& agg = query.aggregates[0];
      PartitionedOptions popts;
      popts.aggregate = agg.kind;
      popts.attribute = agg.attribute;
      popts.parallel_workers = workers;
      // Enough regions that work-stealing balances uneven tuple density.
      popts.partitions = std::max<size_t>(8, workers * 4);
      popts.profile = profile;
      TAGG_ASSIGN_OR_RETURN(
          AggregateSeries series,
          ComputePartitionedAggregate(group_relation, popts));
      zipped.periods.reserve(series.intervals.size());
      zipped.values.reserve(series.intervals.size());
      for (ResultInterval& ri : series.intervals) {
        zipped.periods.push_back(ri.period);
        zipped.values.push_back({std::move(ri.value)});
      }
      agg_stats.work_steps += series.stats.work_steps;
      agg_stats.nodes_allocated += series.stats.nodes_allocated;
      agg_stats.peak_live_nodes =
          std::max(agg_stats.peak_live_nodes, series.stats.peak_live_nodes);
      agg_stats.peak_paper_bytes = std::max(agg_stats.peak_paper_bytes,
                                            series.stats.peak_paper_bytes);
    } else {
      // Instant grouping: all aggregates fused into one algorithm pass
      // (MultiOp), so the constant intervals are computed once per group
      // rather than once per aggregate.
      MultiAggregateOptions multi;
      multi.specs.reserve(query.aggregates.size());
      for (const BoundAggregate& agg : query.aggregates) {
        multi.specs.push_back({agg.kind, agg.attribute});
      }
      multi.algorithm = plan.algorithm;
      multi.k = plan.k;
      multi.presort = plan.presort;
      auto series = ComputeMultiAggregate(group_relation, multi);
      if (!series.ok() && series.status().IsInvalidArgument() &&
          plan.algorithm == AlgorithmKind::kKOrderedTree && !plan.presort) {
        // The declared k-ordering was wrong for this partition; fall back
        // to the paper's safe strategy: sort, then k = 1.
        multi.presort = true;
        multi.k = 1;
        series = ComputeMultiAggregate(group_relation, multi);
      }
      if (!series.ok()) return series.status();
      zipped = std::move(series).value();
      agg_stats.work_steps += zipped.stats.work_steps;
      agg_stats.nodes_allocated += zipped.stats.nodes_allocated;
      agg_stats.peak_live_nodes =
          std::max(agg_stats.peak_live_nodes, zipped.stats.peak_live_nodes);
      agg_stats.peak_paper_bytes = std::max(agg_stats.peak_paper_bytes,
                                            zipped.stats.peak_paper_bytes);
      agg_stats.tree_depth =
          std::max(agg_stats.tree_depth, zipped.stats.tree_depth);
    }
    intervals_total += zipped.periods.size();

    for (size_t i = 0; i < zipped.periods.size(); ++i) {
      if (options.drop_empty) {
        bool all_empty = true;
        for (size_t a = 0; a < zipped.values[i].size(); ++a) {
          if (zipped.values[i][a] !=
              EmptyValueOf(query.aggregates[a].kind)) {
            all_empty = false;
            break;
          }
        }
        if (all_empty) continue;
      }
      QueryResultRow row;
      row.valid = zipped.periods[i];
      row.values.reserve(query.columns.size());
      for (const BoundOutputColumn& col : query.columns) {
        if (col.is_aggregate) {
          row.values.push_back(zipped.values[i][col.index]);
        } else {
          row.values.push_back(key[col.index]);
        }
      }
      result.rows.push_back(std::move(row));
    }
  }
  agg_span.Annotate("intervals", intervals_total);
  agg_span.Annotate("work_steps", agg_stats.work_steps);
  agg_span.Annotate("nodes_allocated", agg_stats.nodes_allocated);
  agg_span.Annotate("peak_live_nodes", agg_stats.peak_live_nodes);
  agg_span.Annotate("paper_bytes", agg_stats.peak_paper_bytes);
  agg_span.Annotate("tree_depth", agg_stats.tree_depth);
  agg_span.End();

  // 5. Optional TSQL2 coalescing of adjacent identical rows.  Rows of one
  // group are consecutive and different groups differ in their grouping
  // values, so a single pass cannot merge across groups.
  if (options.coalesce && !result.rows.empty()) {
    obs::Span coalesce_span(profile, "coalesce");
    const size_t rows_in = result.rows.size();
    std::vector<QueryResultRow> coalesced;
    for (QueryResultRow& row : result.rows) {
      if (!coalesced.empty() && coalesced.back().values == row.values &&
          coalesced.back().valid.MeetsBefore(row.valid)) {
        coalesced.back().valid =
            Period(coalesced.back().valid.start(), row.valid.end());
      } else {
        coalesced.push_back(std::move(row));
      }
    }
    result.rows = std::move(coalesced);
    coalesce_span.Annotate("rows_in", rows_in);
    coalesce_span.Annotate("rows_out", result.rows.size());
  }

  exec_span.Annotate("rows_out", result.rows.size());
  return result;
}

Result<QueryResult> RunQuery(std::string_view sql, const Catalog& catalog,
                             const ExecutorOptions& options) {
  // Every result carries its trace tree; the spans cost two clock reads
  // each and are recorded per query, not per tuple.
  auto profile = std::make_shared<obs::QueryProfile>();
  obs::Span parse_span(profile.get(), "parse");
  auto stmt = ParseSelect(sql);
  parse_span.End();
  if (!stmt.ok()) return stmt.status();

  obs::Span analyze_span(profile.get(), "analyze");
  auto bound = Analyze(stmt.value(), catalog);
  analyze_span.End();
  if (!bound.ok()) return bound.status();

  ExecutorOptions traced = options;
  if (traced.profile == nullptr) traced.profile = profile.get();
  auto result = ExecuteSelect(bound.value(), traced);
  profile->Finish();
  if (!result.ok()) return result.status();
  QueryResult out = std::move(result).value();
  if (out.profile == nullptr && traced.profile == profile.get()) {
    out.profile = std::move(profile);
  }
  return out;
}

}  // namespace tagg
