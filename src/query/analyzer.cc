#include "query/analyzer.h"

#include <algorithm>

#include "util/str.h"

namespace tagg {
namespace {

Result<size_t> ResolveColumn(const Schema& schema, const std::string& name) {
  const auto idx = schema.IndexOf(name);
  if (!idx.has_value()) {
    return Status::NotFound("column '" + name + "' does not exist in " +
                            schema.ToString());
  }
  return *idx;
}

bool IsNumeric(ValueType type) {
  return type == ValueType::kInt || type == ValueType::kDouble;
}

Result<std::unique_ptr<BoundPredicate>> BindPredicate(
    const Predicate& pred, const Schema& schema) {
  auto bound = std::make_unique<BoundPredicate>();
  bound->kind = pred.kind;
  switch (pred.kind) {
    case Predicate::Kind::kComparison: {
      TAGG_ASSIGN_OR_RETURN(bound->attribute,
                            ResolveColumn(schema, pred.column));
      const ValueType column_type = schema.attribute(bound->attribute).type;
      const ValueType literal_type = pred.literal.type();
      const bool compatible =
          (IsNumeric(column_type) && IsNumeric(literal_type)) ||
          (column_type == ValueType::kString &&
           literal_type == ValueType::kString);
      if (!compatible) {
        return Status::InvalidArgument(
            "cannot compare column '" + pred.column + "' (" +
            std::string(ValueTypeToString(column_type)) + ") with literal " +
            pred.literal.ToString());
      }
      bound->op = pred.op;
      bound->literal = pred.literal;
      return bound;
    }
    case Predicate::Kind::kValidOverlaps:
      bound->period = pred.period;
      return bound;
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr: {
      TAGG_ASSIGN_OR_RETURN(bound->lhs, BindPredicate(*pred.lhs, schema));
      TAGG_ASSIGN_OR_RETURN(bound->rhs, BindPredicate(*pred.rhs, schema));
      return bound;
    }
    case Predicate::Kind::kNot: {
      TAGG_ASSIGN_OR_RETURN(bound->lhs, BindPredicate(*pred.lhs, schema));
      return bound;
    }
  }
  return Status::Internal("unknown predicate kind");
}

}  // namespace

Result<BoundQuery> Analyze(const SelectStmt& stmt, const Catalog& catalog) {
  BoundQuery query;
  query.explain = stmt.explain;
  query.analyze = stmt.analyze;
  TAGG_ASSIGN_OR_RETURN(query.relation, catalog.Get(stmt.relation));
  TAGG_ASSIGN_OR_RETURN(query.stats, catalog.GetStats(stmt.relation));
  query.column_backing = catalog.GetColumnBacking(stmt.relation);
  const Schema& schema = query.relation->schema();

  if (stmt.items.empty()) {
    return Status::InvalidArgument("empty select list");
  }

  // Bind grouping columns first so select items can be checked against
  // them.
  for (const std::string& name : stmt.group_by) {
    TAGG_ASSIGN_OR_RETURN(size_t idx, ResolveColumn(schema, name));
    if (std::find(query.group_attributes.begin(),
                  query.group_attributes.end(),
                  idx) != query.group_attributes.end()) {
      return Status::InvalidArgument("duplicate grouping column '" + name +
                                     "'");
    }
    query.group_attributes.push_back(idx);
  }

  bool has_aggregate = false;
  for (const SelectItem& item : stmt.items) {
    BoundOutputColumn column;
    if (item.is_aggregate) {
      has_aggregate = true;
      BoundAggregate agg;
      agg.kind = item.aggregate;
      agg.display_name = item.ToString();
      if (!item.column.empty()) {
        TAGG_ASSIGN_OR_RETURN(agg.attribute,
                              ResolveColumn(schema, item.column));
        if (agg.kind != AggregateKind::kCount &&
            !IsNumeric(schema.attribute(agg.attribute).type)) {
          return Status::NotSupported(
              std::string(AggregateKindToString(agg.kind)) +
              " over non-numeric column '" + item.column + "'");
        }
      } else if (agg.kind != AggregateKind::kCount) {
        return Status::InvalidArgument(
            std::string(AggregateKindToString(agg.kind)) +
            " requires a column argument");
      }
      column.is_aggregate = true;
      column.index = query.aggregates.size();
      column.name = agg.display_name;
      query.aggregates.push_back(std::move(agg));
    } else {
      TAGG_ASSIGN_OR_RETURN(size_t idx, ResolveColumn(schema, item.column));
      const auto it = std::find(query.group_attributes.begin(),
                                query.group_attributes.end(), idx);
      if (it == query.group_attributes.end()) {
        return Status::InvalidArgument(
            "column '" + item.column +
            "' must appear in the GROUP BY clause to be selected");
      }
      column.is_aggregate = false;
      column.index =
          static_cast<size_t>(it - query.group_attributes.begin());
      column.name = schema.attribute(idx).name;
    }
    query.columns.push_back(std::move(column));
  }
  if (!has_aggregate) {
    return Status::InvalidArgument(
        "query must contain at least one aggregate");
  }

  if (stmt.where != nullptr) {
    TAGG_ASSIGN_OR_RETURN(query.where, BindPredicate(*stmt.where, schema));
  }

  query.temporal = stmt.temporal;
  if (query.temporal.kind == TemporalGrouping::Kind::kSpan) {
    if (query.temporal.span_width <= 0) {
      return Status::InvalidArgument("span width must be positive");
    }
    if (query.temporal.has_window &&
        query.temporal.window_start > query.temporal.window_end) {
      return Status::InvalidArgument("span window start after end");
    }
  }
  return query;
}

}  // namespace tagg
