#include "query/token.h"

#include "util/str.h"

namespace tagg {

std::string_view TokenTypeToString(TokenType type) {
  switch (type) {
    case TokenType::kIdentifier:
      return "identifier";
    case TokenType::kIntLiteral:
      return "integer";
    case TokenType::kFloatLiteral:
      return "float";
    case TokenType::kStringLiteral:
      return "string";
    case TokenType::kComma:
      return "','";
    case TokenType::kLParen:
      return "'('";
    case TokenType::kRParen:
      return "')'";
    case TokenType::kStar:
      return "'*'";
    case TokenType::kEq:
      return "'='";
    case TokenType::kNe:
      return "'<>'";
    case TokenType::kLt:
      return "'<'";
    case TokenType::kLe:
      return "'<='";
    case TokenType::kGt:
      return "'>'";
    case TokenType::kGe:
      return "'>='";
    case TokenType::kSemicolon:
      return "';'";
    case TokenType::kEnd:
      return "end of query";
  }
  return "?";
}

bool Token::IsWord(std::string_view word) const {
  return type == TokenType::kIdentifier && EqualsIgnoreCase(text, word);
}

std::string Token::ToString() const {
  if (type == TokenType::kIdentifier || type == TokenType::kIntLiteral ||
      type == TokenType::kFloatLiteral) {
    return text;
  }
  if (type == TokenType::kStringLiteral) return "'" + text + "'";
  return std::string(TokenTypeToString(type));
}

}  // namespace tagg
