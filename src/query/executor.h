// Query execution: predicate filtering, value grouping, temporal
// aggregation through the Section 6.3 planner, and result assembly.
//
// Per the paper's aggregation-set model (Section 4.1), the executor
// partitions qualifying tuples by the GROUP BY values, evaluates every
// aggregate of the select list over each partition with the algorithm the
// planner picks, and zips the per-aggregate series together — the
// constant-interval boundaries of a partition are identical across
// aggregates because they depend only on the tuples' timestamps.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/planner.h"
#include "live/service.h"
#include "obs/trace.h"
#include "query/analyzer.h"
#include "shard/sharded_service.h"
#include "util/result.h"

namespace tagg {

/// Execution knobs.
struct ExecutorOptions {
  /// Remove result rows over intervals where the group has no tuples.
  bool drop_empty = true;
  /// Merge adjacent rows with identical values (TSQL2 coalescing).
  bool coalesce = false;
  /// Bypass the planner and force an algorithm.
  std::optional<AlgorithmKind> force_algorithm;
  /// Worker threads for the parallel partitioned path.  0 (the default)
  /// resolves from the TAGG_WORKERS environment variable, falling back
  /// to 1 (sequential).  When the resolved value exceeds 1, eligible
  /// queries — a single aggregate with instant grouping — are evaluated
  /// through ComputePartitionedAggregate (core/partitioned_agg.h) with
  /// parallel routing and region builds; everything else keeps the
  /// planner's sequential choice.  Results are identical either way.
  size_t parallel_workers = 0;
  /// Memory budget handed to the planner.
  size_t memory_budget_bytes = static_cast<size_t>(-1);
  /// When set, single-aggregate instant-grouped queries without WHERE or
  /// GROUP BY are served from a registered, up-to-date live index instead
  /// of rebuilding an aggregation tree per query (src/live).  Queries the
  /// service cannot serve fall back to the batch path transparently.
  const LiveService* live_service = nullptr;
  /// When set, the same eligible queries are answered scatter-gather by
  /// the horizontally sharded live index (src/shard) — checked before
  /// `live_service`.  Ineligible or stale queries fall back exactly like
  /// the unsharded route.
  const shard::ShardedLiveService* sharded_service = nullptr;
  /// When set, the executor records a span per pipeline stage (filter,
  /// plan, group, aggregate, coalesce) into this profile.  Null disables
  /// tracing at zero cost; RunQuery supplies one automatically.
  obs::QueryProfile* profile = nullptr;
};

/// One result row: the select-list values plus the implicit valid period.
struct QueryResultRow {
  std::vector<Value> values;
  Period valid;
};

/// A complete query result.
struct QueryResult {
  std::vector<std::string> column_names;  // the implicit VALID prints last
  std::vector<QueryResultRow> rows;
  /// The plan the optimizer chose (or the forced override).
  Plan plan;
  /// True when the statement was EXPLAIN ANALYZE: the query ran and
  /// callers should present ExplainAnalyzeString() rather than the rows.
  bool analyzed = false;
  /// The query's trace tree; set by RunQuery (always) or when
  /// ExecutorOptions::profile was supplied.  Shared so results stay
  /// copyable.
  std::shared_ptr<obs::QueryProfile> profile;

  /// Aligned tabular rendering.
  std::string ToString(size_t max_rows = 64) const;

  /// EXPLAIN ANALYZE rendering: the chosen plan followed by the profiled
  /// operator tree with per-stage timings and annotations.
  std::string ExplainAnalyzeString() const;
};

/// Executes a bound query.
Result<QueryResult> ExecuteSelect(const BoundQuery& query,
                                  const ExecutorOptions& options = {});

/// Convenience: parse + analyze + execute one statement.
Result<QueryResult> RunQuery(std::string_view sql, const Catalog& catalog,
                             const ExecutorOptions& options = {});

}  // namespace tagg
