// Recursive-descent parser for the TSQL2-flavored query language.
//
// Grammar (keywords case-insensitive):
//
//   select     := [EXPLAIN [ANALYZE]] SELECT item (',' item)* FROM identifier
//                 [WHERE or_expr] [GROUP BY group_item (',' group_item)*]
//                 [';']
//   item       := agg_name '(' (identifier | '*') ')' | identifier
//   agg_name   := COUNT | SUM | MIN | MAX | AVG
//   or_expr    := and_expr (OR and_expr)*
//   and_expr   := not_expr (AND not_expr)*
//   not_expr   := NOT not_expr | primary
//   primary    := '(' or_expr ')'
//               | VALID OVERLAPS integer TO (integer | FOREVER)
//               | identifier cmp literal
//   cmp        := '=' | '<>' | '!=' | '<' | '<=' | '>' | '>='
//   literal    := integer | float | string
//   group_item := INSTANT
//               | SPAN integer [FROM integer TO integer]
//               | identifier

#pragma once

#include <string_view>

#include "query/ast.h"
#include "util/result.h"

namespace tagg {

/// Parses one SELECT statement; errors carry the offending position.
Result<SelectStmt> ParseSelect(std::string_view query);

}  // namespace tagg
