#include "query/lexer.h"

#include <cctype>

#include "util/str.h"

namespace tagg {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Lex(std::string_view query) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = query.size();
  while (i < n) {
    const char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(query[i])) ++i;
      tokens.push_back({TokenType::kIdentifier,
                        std::string(query.substr(start, i - start)), start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      while (i < n && std::isdigit(static_cast<unsigned char>(query[i]))) {
        ++i;
      }
      bool is_float = false;
      if (i < n && query[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(query[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(query[i]))) {
          ++i;
        }
      }
      tokens.push_back({is_float ? TokenType::kFloatLiteral
                                 : TokenType::kIntLiteral,
                        std::string(query.substr(start, i - start)), start});
      continue;
    }
    switch (c) {
      case '\'': {
        ++i;
        std::string text;
        bool closed = false;
        while (i < n) {
          if (query[i] == '\'') {
            if (i + 1 < n && query[i + 1] == '\'') {  // escaped quote
              text += '\'';
              i += 2;
              continue;
            }
            closed = true;
            ++i;
            break;
          }
          text += query[i];
          ++i;
        }
        if (!closed) {
          return Status::InvalidArgument(StringPrintf(
              "unterminated string literal at position %zu", start));
        }
        tokens.push_back({TokenType::kStringLiteral, std::move(text), start});
        continue;
      }
      case ',':
        tokens.push_back({TokenType::kComma, ",", start});
        ++i;
        continue;
      case '(':
        tokens.push_back({TokenType::kLParen, "(", start});
        ++i;
        continue;
      case ')':
        tokens.push_back({TokenType::kRParen, ")", start});
        ++i;
        continue;
      case '*':
        tokens.push_back({TokenType::kStar, "*", start});
        ++i;
        continue;
      case ';':
        tokens.push_back({TokenType::kSemicolon, ";", start});
        ++i;
        continue;
      case '=':
        tokens.push_back({TokenType::kEq, "=", start});
        ++i;
        continue;
      case '!':
        if (i + 1 < n && query[i + 1] == '=') {
          tokens.push_back({TokenType::kNe, "!=", start});
          i += 2;
          continue;
        }
        return Status::InvalidArgument(
            StringPrintf("unexpected '!' at position %zu", start));
      case '<':
        if (i + 1 < n && query[i + 1] == '=') {
          tokens.push_back({TokenType::kLe, "<=", start});
          i += 2;
        } else if (i + 1 < n && query[i + 1] == '>') {
          tokens.push_back({TokenType::kNe, "<>", start});
          i += 2;
        } else {
          tokens.push_back({TokenType::kLt, "<", start});
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && query[i + 1] == '=') {
          tokens.push_back({TokenType::kGe, ">=", start});
          i += 2;
        } else {
          tokens.push_back({TokenType::kGt, ">", start});
          ++i;
        }
        continue;
      default:
        return Status::InvalidArgument(StringPrintf(
            "unexpected character '%c' at position %zu", c, start));
    }
  }
  tokens.push_back({TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace tagg
