// Semantic analysis: binds a parsed SELECT to the catalog.
//
// Resolves the relation, maps column names to attribute indices, type-checks
// aggregate arguments and predicate comparisons, enforces the GROUP BY
// discipline (every non-aggregate select item must be grouped on), and
// validates the temporal-grouping clause.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "query/ast.h"
#include "temporal/catalog.h"
#include "util/result.h"

namespace tagg {

/// A predicate with column references resolved to attribute indices.
struct BoundPredicate {
  Predicate::Kind kind = Predicate::Kind::kComparison;
  size_t attribute = 0;
  CompareOp op = CompareOp::kEq;
  Value literal;
  Period period;  // kValidOverlaps
  std::unique_ptr<BoundPredicate> lhs;
  std::unique_ptr<BoundPredicate> rhs;
};

/// One aggregate to evaluate.
struct BoundAggregate {
  AggregateKind kind = AggregateKind::kCount;
  /// Attribute index; AggregateOptions::kNoAttribute for COUNT(*).
  size_t attribute = AggregateOptions::kNoAttribute;
  std::string display_name;  // e.g. "AVG(salary)"
};

/// One output column: either a grouping attribute or an aggregate result.
struct BoundOutputColumn {
  bool is_aggregate = false;
  size_t index = 0;  // into BoundQuery::aggregates or ::group_attributes
  std::string name;
};

/// A fully resolved query, ready for execution.
struct BoundQuery {
  /// Plan only; do not execute (EXPLAIN).
  bool explain = false;
  /// Execute and report the profiled operator tree (EXPLAIN ANALYZE).
  bool analyze = false;
  std::shared_ptr<Relation> relation;
  RelationStats stats;
  /// The relation's columnar on-disk backing, when one is attached in the
  /// catalog (nullptr otherwise).  The executor may serve eligible batch
  /// aggregates from it via the pruned column scan.
  std::shared_ptr<const ColumnBacking> column_backing;
  std::vector<BoundAggregate> aggregates;
  std::vector<size_t> group_attributes;
  std::vector<BoundOutputColumn> columns;
  std::unique_ptr<BoundPredicate> where;  // null when absent
  TemporalGrouping temporal;
};

/// Binds and validates `stmt` against `catalog`.
Result<BoundQuery> Analyze(const SelectStmt& stmt, const Catalog& catalog);

}  // namespace tagg
