// Lexer for the TSQL2-flavored query language.

#pragma once

#include <string_view>
#include <vector>

#include "query/token.h"
#include "util/result.h"

namespace tagg {

/// Tokenizes `query`; the returned vector always ends with a kEnd token.
/// Errors on unterminated strings and unexpected characters.
Result<std::vector<Token>> Lex(std::string_view query);

}  // namespace tagg
