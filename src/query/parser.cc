#include "query/parser.h"

#include <charconv>

#include "query/lexer.h"
#include "util/str.h"

namespace tagg {

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string Predicate::ToString() const {
  switch (kind) {
    case Kind::kComparison:
      return column + " " + std::string(CompareOpToString(op)) + " " +
             literal.ToString();
    case Kind::kValidOverlaps:
      return "VALID OVERLAPS " + InstantToString(period.start()) + " TO " +
             InstantToString(period.end());
    case Kind::kAnd:
      return "(" + lhs->ToString() + " AND " + rhs->ToString() + ")";
    case Kind::kOr:
      return "(" + lhs->ToString() + " OR " + rhs->ToString() + ")";
    case Kind::kNot:
      return "(NOT " + lhs->ToString() + ")";
  }
  return "?";
}

std::string SelectItem::ToString() const {
  if (!is_aggregate) return column;
  return std::string(AggregateKindToString(aggregate)) + "(" +
         (column.empty() ? "*" : column) + ")";
}

std::string SelectStmt::ToString() const {
  std::string out = explain
                        ? (analyze ? "EXPLAIN ANALYZE SELECT "
                                   : "EXPLAIN SELECT ")
                        : "SELECT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i].ToString();
  }
  out += " FROM " + relation;
  if (where) out += " WHERE " + where->ToString();
  if (!group_by.empty() || temporal.kind != TemporalGrouping::Kind::kInstant) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i];
    }
    if (temporal.kind == TemporalGrouping::Kind::kSpan) {
      if (!group_by.empty()) out += ", ";
      out += "SPAN " + std::to_string(temporal.span_width);
      if (temporal.has_window) {
        out += " FROM " + std::to_string(temporal.window_start) + " TO " +
               std::to_string(temporal.window_end);
      }
    }
  }
  return out;
}

namespace {

/// Token-stream cursor with expectation helpers.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStmt> Parse() {
    SelectStmt stmt;
    if (Peek().IsWord("EXPLAIN")) {
      Advance();
      stmt.explain = true;
      if (Peek().IsWord("ANALYZE")) {
        Advance();
        stmt.analyze = true;
      }
    }
    TAGG_RETURN_IF_ERROR(ExpectWord("SELECT"));
    TAGG_RETURN_IF_ERROR(ParseSelectList(&stmt));
    TAGG_RETURN_IF_ERROR(ExpectWord("FROM"));
    TAGG_ASSIGN_OR_RETURN(stmt.relation, ExpectIdentifier("relation name"));
    if (Peek().IsWord("WHERE")) {
      Advance();
      TAGG_ASSIGN_OR_RETURN(stmt.where, ParseOr());
    }
    if (Peek().IsWord("GROUP")) {
      Advance();
      TAGG_RETURN_IF_ERROR(ExpectWord("BY"));
      TAGG_RETURN_IF_ERROR(ParseGroupBy(&stmt));
    }
    if (Peek().Is(TokenType::kSemicolon)) Advance();
    if (!Peek().Is(TokenType::kEnd)) {
      return Unexpected("end of query");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Unexpected(std::string_view wanted) const {
    return Status::InvalidArgument(StringPrintf(
        "expected %.*s but found %s at position %zu",
        static_cast<int>(wanted.size()), wanted.data(),
        Peek().ToString().c_str(), Peek().position));
  }

  Status ExpectWord(std::string_view word) {
    if (!Peek().IsWord(word)) return Unexpected(word);
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(std::string_view what) {
    if (!Peek().Is(TokenType::kIdentifier)) return Unexpected(what);
    return Advance().text;
  }

  Status ParseSelectList(SelectStmt* stmt) {
    while (true) {
      TAGG_ASSIGN_OR_RETURN(SelectItem item, ParseItem());
      stmt->items.push_back(std::move(item));
      if (!Peek().Is(TokenType::kComma)) break;
      Advance();
    }
    return Status::OK();
  }

  Result<SelectItem> ParseItem() {
    if (!Peek().Is(TokenType::kIdentifier)) {
      return Unexpected("column or aggregate");
    }
    SelectItem item;
    // An aggregate name followed by '(' is an aggregate call; otherwise
    // the word is a plain column reference (so a column named "count" is
    // still usable unparenthesized).
    auto agg = ParseAggregateKind(Peek().text);
    if (agg.ok() && Peek(1).Is(TokenType::kLParen)) {
      item.is_aggregate = true;
      item.aggregate = agg.value();
      Advance();  // aggregate name
      Advance();  // '('
      if (Peek().Is(TokenType::kStar)) {
        if (item.aggregate != AggregateKind::kCount) {
          return Status::InvalidArgument(
              "only COUNT accepts '*' as its argument");
        }
        Advance();
      } else {
        TAGG_ASSIGN_OR_RETURN(item.column,
                              ExpectIdentifier("aggregate argument"));
      }
      if (!Peek().Is(TokenType::kRParen)) return Unexpected(")");
      Advance();
      return item;
    }
    item.column = Advance().text;
    return item;
  }

  Result<std::unique_ptr<Predicate>> ParseOr() {
    TAGG_ASSIGN_OR_RETURN(std::unique_ptr<Predicate> lhs, ParseAnd());
    while (Peek().IsWord("OR")) {
      Advance();
      TAGG_ASSIGN_OR_RETURN(std::unique_ptr<Predicate> rhs, ParseAnd());
      auto node = std::make_unique<Predicate>();
      node->kind = Predicate::Kind::kOr;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<std::unique_ptr<Predicate>> ParseAnd() {
    TAGG_ASSIGN_OR_RETURN(std::unique_ptr<Predicate> lhs, ParseNot());
    while (Peek().IsWord("AND")) {
      Advance();
      TAGG_ASSIGN_OR_RETURN(std::unique_ptr<Predicate> rhs, ParseNot());
      auto node = std::make_unique<Predicate>();
      node->kind = Predicate::Kind::kAnd;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<std::unique_ptr<Predicate>> ParseNot() {
    if (Peek().IsWord("NOT")) {
      Advance();
      TAGG_ASSIGN_OR_RETURN(std::unique_ptr<Predicate> inner, ParseNot());
      auto node = std::make_unique<Predicate>();
      node->kind = Predicate::Kind::kNot;
      node->lhs = std::move(inner);
      return node;
    }
    return ParsePrimary();
  }

  Result<std::unique_ptr<Predicate>> ParsePrimary() {
    if (Peek().Is(TokenType::kLParen)) {
      Advance();
      TAGG_ASSIGN_OR_RETURN(std::unique_ptr<Predicate> inner, ParseOr());
      if (!Peek().Is(TokenType::kRParen)) return Unexpected(")");
      Advance();
      return inner;
    }
    // The valid clause: VALID OVERLAPS a TO (b | FOREVER).
    if (Peek().IsWord("VALID") && Peek(1).IsWord("OVERLAPS")) {
      Advance();
      Advance();
      TAGG_ASSIGN_OR_RETURN(Instant start, ExpectInt("period start"));
      TAGG_RETURN_IF_ERROR(ExpectWord("TO"));
      Instant end;
      if (Peek().IsWord("FOREVER")) {
        Advance();
        end = kForever;
      } else {
        TAGG_ASSIGN_OR_RETURN(end, ExpectInt("period end"));
      }
      auto period = Period::Make(start, end);
      if (!period.ok()) return period.status();
      auto node = std::make_unique<Predicate>();
      node->kind = Predicate::Kind::kValidOverlaps;
      node->period = period.value();
      return node;
    }
    auto node = std::make_unique<Predicate>();
    node->kind = Predicate::Kind::kComparison;
    TAGG_ASSIGN_OR_RETURN(node->column, ExpectIdentifier("column"));
    switch (Peek().type) {
      case TokenType::kEq:
        node->op = CompareOp::kEq;
        break;
      case TokenType::kNe:
        node->op = CompareOp::kNe;
        break;
      case TokenType::kLt:
        node->op = CompareOp::kLt;
        break;
      case TokenType::kLe:
        node->op = CompareOp::kLe;
        break;
      case TokenType::kGt:
        node->op = CompareOp::kGt;
        break;
      case TokenType::kGe:
        node->op = CompareOp::kGe;
        break;
      default:
        return Unexpected("comparison operator");
    }
    Advance();
    TAGG_ASSIGN_OR_RETURN(node->literal, ParseLiteral());
    return node;
  }

  Result<Value> ParseLiteral() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kIntLiteral: {
        int64_t v = 0;
        const auto [ptr, ec] =
            std::from_chars(t.text.data(), t.text.data() + t.text.size(), v);
        if (ec != std::errc() || ptr != t.text.data() + t.text.size()) {
          return Status::InvalidArgument("integer literal '" + t.text +
                                         "' out of range");
        }
        Advance();
        return Value::Int(v);
      }
      case TokenType::kFloatLiteral: {
        Advance();
        return Value::Double(std::stod(t.text));
      }
      case TokenType::kStringLiteral:
        Advance();
        return Value::String(t.text);
      default:
        return Unexpected("literal");
    }
  }

  Result<Instant> ExpectInt(std::string_view what) {
    if (!Peek().Is(TokenType::kIntLiteral)) return Unexpected(what);
    const Token& t = Advance();
    Instant v = 0;
    const auto [ptr, ec] =
        std::from_chars(t.text.data(), t.text.data() + t.text.size(), v);
    if (ec != std::errc() || ptr != t.text.data() + t.text.size()) {
      return Status::InvalidArgument("integer literal '" + t.text +
                                     "' out of range");
    }
    return v;
  }

  Status ParseGroupBy(SelectStmt* stmt) {
    bool temporal_seen = false;
    while (true) {
      if (Peek().IsWord("INSTANT")) {
        if (temporal_seen) {
          return Status::InvalidArgument(
              "multiple temporal grouping clauses");
        }
        temporal_seen = true;
        Advance();
        stmt->temporal.kind = TemporalGrouping::Kind::kInstant;
      } else if (Peek().IsWord("SPAN")) {
        if (temporal_seen) {
          return Status::InvalidArgument(
              "multiple temporal grouping clauses");
        }
        temporal_seen = true;
        Advance();
        stmt->temporal.kind = TemporalGrouping::Kind::kSpan;
        TAGG_ASSIGN_OR_RETURN(stmt->temporal.span_width,
                              ExpectInt("span width"));
        if (Peek().IsWord("FROM")) {
          Advance();
          TAGG_ASSIGN_OR_RETURN(stmt->temporal.window_start,
                                ExpectInt("window start"));
          TAGG_RETURN_IF_ERROR(ExpectWord("TO"));
          TAGG_ASSIGN_OR_RETURN(stmt->temporal.window_end,
                                ExpectInt("window end"));
          stmt->temporal.has_window = true;
        }
      } else {
        TAGG_ASSIGN_OR_RETURN(std::string column,
                              ExpectIdentifier("grouping column"));
        stmt->group_by.push_back(std::move(column));
      }
      if (!Peek().Is(TokenType::kComma)) break;
      Advance();
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStmt> ParseSelect(std::string_view query) {
  TAGG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(query));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace tagg
