// Tokens of the TSQL2-flavored query language.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace tagg {

enum class TokenType : uint8_t {
  kIdentifier,  // keywords are identifiers; the parser matches them
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,  // single-quoted
  kComma,
  kLParen,
  kRParen,
  kStar,
  kEq,   // =
  kNe,   // <> or !=
  kLt,   // <
  kLe,   // <=
  kGt,   // >
  kGe,   // >=
  kSemicolon,
  kEnd,  // end of input
};

std::string_view TokenTypeToString(TokenType type);

/// One lexed token; `text` is the raw spelling (unquoted for strings).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  size_t position = 0;  // byte offset in the query, for error messages

  bool Is(TokenType t) const { return type == t; }
  /// Case-insensitive keyword/identifier match.
  bool IsWord(std::string_view word) const;

  std::string ToString() const;
};

}  // namespace tagg
