// Ablation (Section 3 / Epstein): many aggregates per query.
//
// Epstein's recipe — quoted by the paper — computes each scalar aggregate
// separately.  For temporal aggregation every run rebuilds the same
// constant intervals, so fusing all aggregates into one pass (MultiOp)
// should approach a 5x win for a 5-aggregate query.  This bench measures
// SELECT COUNT(*), SUM(s), MIN(s), MAX(s), AVG(s) both ways over the
// aggregation tree.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include "core/aggregates.h"
#include "core/multi_agg.h"
#include "core/workload.h"

namespace tagg {
namespace {

Relation MakeWorkload(size_t n) {
  WorkloadSpec spec;
  spec.num_tuples = n;
  spec.lifespan = 1'000'000;
  spec.long_lived_fraction = 0.4;
  spec.seed = 42;
  return GenerateEmployedRelation(spec).value();
}

const std::vector<MultiSpec>& FiveSpecs() {
  static const std::vector<MultiSpec> specs = {
      {AggregateKind::kCount, AggregateOptions::kNoAttribute},
      {AggregateKind::kSum, 1},
      {AggregateKind::kMin, 1},
      {AggregateKind::kMax, 1},
      {AggregateKind::kAvg, 1},
  };
  return specs;
}

void BM_FiveAggregates_SeparatePasses(benchmark::State& state) {
  const Relation relation = MakeWorkload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    for (const MultiSpec& spec : FiveSpecs()) {
      AggregateOptions options;
      options.aggregate = spec.kind;
      options.attribute = spec.attribute;
      options.algorithm = AlgorithmKind::kAggregationTree;
      auto series = ComputeTemporalAggregate(relation, options);
      if (!series.ok()) {
        state.SkipWithError(series.status().ToString().c_str());
        return;
      }
      bench::KeepAlive(series->intervals);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * 5);
}

void BM_FiveAggregates_FusedSinglePass(benchmark::State& state) {
  const Relation relation = MakeWorkload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    MultiAggregateOptions options;
    options.specs = FiveSpecs();
    options.algorithm = AlgorithmKind::kAggregationTree;
    auto series = ComputeMultiAggregate(relation, options);
    if (!series.ok()) {
      state.SkipWithError(series.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(series->periods);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * 5);
}

BENCHMARK(BM_FiveAggregates_SeparatePasses)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FiveAggregates_FusedSinglePass)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tagg

TAGG_BENCH_MAIN()
