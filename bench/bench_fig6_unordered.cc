// Figure 6: query evaluation time on UNORDERED (randomly ordered)
// relations — linked list vs aggregation tree, across relation sizes
// (1K..64K tuples) and long-lived-tuple percentages (0%, 40%, 80%).
//
// Paper's findings to reproduce in shape:
//   * the linked list is the worst performer at every size (300x slower
//     than the aggregation tree at 64K tuples);
//   * neither algorithm's run time is materially affected by the share of
//     long-lived tuples on random input.

#include "bench/bench_util.h"
#include "core/aggregation_tree.h"
#include "core/linked_list_agg.h"

namespace tagg {
namespace {

void BM_Fig6_LinkedList(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const double ll = static_cast<double>(state.range(1)) / 100.0;
  const auto periods = bench::MakePeriods(n, ll, TupleOrder::kRandom);
  bench::RunCountBench(state, periods,
                       [] { return LinkedListAggregator<CountOp>(); });
}

void BM_Fig6_AggregationTree(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const double ll = static_cast<double>(state.range(1)) / 100.0;
  const auto periods = bench::MakePeriods(n, ll, TupleOrder::kRandom);
  bench::RunCountBench(
      state, periods, [] { return AggregationTreeAggregator<CountOp>(); });
}

BENCHMARK(BM_Fig6_LinkedList)
    ->ArgsProduct({benchmark::CreateRange(bench::kMinTuples,
                                          bench::kMaxTuples, 2),
                   {0, 40, 80}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Fig6_AggregationTree)
    ->ArgsProduct({benchmark::CreateRange(bench::kMinTuples,
                                          bench::kMaxTuples, 2),
                   {0, 40, 80}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tagg

TAGG_BENCH_MAIN()
