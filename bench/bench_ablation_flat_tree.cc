// Ablation (Section 5.1): the array-backed aggregation tree.
//
// "There are other techniques which may be used to implement the
// aggregation tree with only limited memory resources, such as
// preallocating the tree in a linear memory array, thus avoiding the need
// for tree node pointers."
//
// Compares the pointer tree against the flat (index-linked) tree — with
// and without up-front reservation — on random input.  Watch both the
// times and the peak_bytes counters: the flat node is 24 bytes versus the
// pointer node's 32 (with a COUNT state), and allocation is one vector.

#include "bench/bench_util.h"
#include "core/aggregation_tree.h"
#include "core/flat_tree.h"

namespace tagg {
namespace {

void BM_PointerTree(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto periods = bench::MakePeriods(n, 0.0, TupleOrder::kRandom);
  bench::RunCountBench(
      state, periods, [] { return AggregationTreeAggregator<CountOp>(); });
  state.counters["node_bytes"] =
      static_cast<double>(sizeof(internal::SplitTree<CountOp>::Node));
}

void BM_FlatTree(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto periods = bench::MakePeriods(n, 0.0, TupleOrder::kRandom);
  bench::RunCountBench(state, periods,
                       [] { return FlatTreeAggregator<CountOp>(); });
  state.counters["node_bytes"] =
      static_cast<double>(FlatTreeAggregator<CountOp>::node_bytes());
}

void BM_FlatTree_Reserved(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto periods = bench::MakePeriods(n, 0.0, TupleOrder::kRandom);
  bench::RunCountBench(state, periods, [n] {
    FlatTreeAggregator<CountOp> agg;
    agg.ReserveForTuples(n);
    return agg;
  });
}

BENCHMARK(BM_PointerTree)
    ->RangeMultiplier(2)
    ->Range(bench::kMinTuples, bench::kMaxTuples)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FlatTree)
    ->RangeMultiplier(2)
    ->Range(bench::kMinTuples, bench::kMaxTuples)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FlatTree_Reserved)
    ->RangeMultiplier(2)
    ->Range(bench::kMinTuples, bench::kMaxTuples)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tagg

TAGG_BENCH_MAIN()
