// Figure 9: main-memory comparison with NO long-lived tuples.
//
// Reports peak live nodes and bytes (at the paper's 16 bytes/node
// accounting — "both aggregation tree algorithms used 16 bytes per node
// ... the linked list algorithm used 16 bytes per node") through benchmark
// counters: read the peak_bytes16 / peak_nodes columns, not the times.
//
// Expected shape:
//   * the basic aggregation tree needs the most memory (two nodes per
//     unique timestamp);
//   * the linked list needs about half that (one node per constant
//     interval), independent of k;
//   * the k-ordered trees sit far below both, growing with k, with K=1 on
//     a sorted relation barely above constant.

#include "bench/bench_util.h"
#include "core/aggregation_tree.h"
#include "core/k_ordered_tree.h"
#include "core/linked_list_agg.h"

namespace tagg {
namespace {

constexpr double kLongLived = 0.0;
constexpr double kKPct = 0.02;

void BM_Fig9_Memory_LinkedList(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto periods = bench::MakePeriods(n, kLongLived, TupleOrder::kRandom);
  bench::RunCountBench(state, periods,
                       [] { return LinkedListAggregator<CountOp>(); });
}

void BM_Fig9_Memory_AggregationTree(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto periods = bench::MakePeriods(n, kLongLived, TupleOrder::kRandom);
  bench::RunCountBench(
      state, periods, [] { return AggregationTreeAggregator<CountOp>(); });
}

void BM_Fig9_Memory_Ktree(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto k = state.range(1);
  const auto periods = bench::MakePeriods(
      n, kLongLived, TupleOrder::kKOrdered, k, kKPct);
  bench::RunCountBench(
      state, periods, [k] { return KOrderedTreeAggregator<CountOp>(k); });
}

void BM_Fig9_Memory_Ktree_Sorted_K1(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto periods = bench::MakePeriods(n, kLongLived, TupleOrder::kSorted);
  bench::RunCountBench(
      state, periods, [] { return KOrderedTreeAggregator<CountOp>(1); });
}

// Companion to Section 6.2's observation that long-lived tuples blow up
// the k-ordered tree's memory but leave the other algorithms untouched.
void BM_Fig9_Memory_Ktree_LongLived80(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto k = state.range(1);
  const auto periods =
      bench::MakePeriods(n, 0.8, TupleOrder::kKOrdered, k, kKPct);
  bench::RunCountBench(
      state, periods, [k] { return KOrderedTreeAggregator<CountOp>(k); });
}

BENCHMARK(BM_Fig9_Memory_LinkedList)
    ->RangeMultiplier(2)
    ->Range(bench::kMinTuples, bench::kMaxTuples)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Fig9_Memory_AggregationTree)
    ->RangeMultiplier(2)
    ->Range(bench::kMinTuples, bench::kMaxTuples)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Fig9_Memory_Ktree)
    ->ArgsProduct({benchmark::CreateRange(bench::kMinTuples,
                                          bench::kMaxTuples, 2),
                   {1, 4, 400}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Fig9_Memory_Ktree_Sorted_K1)
    ->RangeMultiplier(2)
    ->Range(bench::kMinTuples, bench::kMaxTuples)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Fig9_Memory_Ktree_LongLived80)
    ->ArgsProduct({benchmark::CreateRange(bench::kMinTuples,
                                          bench::kMaxTuples, 2),
                   {1, 4, 400}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tagg

TAGG_BENCH_MAIN()
