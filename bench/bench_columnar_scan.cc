// Columnar stored-relation scan: zone-map pruning vs. the heap path.
//
// Two families over the same random short-lived relation, swept across
// window widths (point / narrow / wide / full span of the 1M-instant
// lifespan):
//
//   * ColumnarScan: the pruned scan over a TCR1 column file
//     (core/column_scan) — zone-map block skipping, footer-summary
//     composition for covering blocks, decode-and-sweep for the rest.
//     The block-classification counters (total/skipped/summarized/
//     decoded, bytes pruned and decoded) come from the scan's own stats
//     and land in the JSON so CI can assert the narrow windows actually
//     skip >= 90% of the blocks.
//   * HeapTableScan: the pre-columnar baseline — a full TableScan of the
//     equivalent heap file through the buffer pool, clipping each tuple
//     to the window and aggregating the survivors with the Section 5.1
//     aggregation tree.  Every window pays the full file read; the delta
//     against ColumnarScan is the price of not having zone maps.
//
// Results land in bench_results/ as JSON via TAGG_BENCH_MAIN; CI diffs
// them against bench_results/baseline with tools/bench_compare.py.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"

#include "core/aggregates.h"
#include "core/column_scan.h"
#include "core/workload.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/column_relation.h"
#include "storage/relation_io.h"
#include "storage/table_scan.h"

namespace tagg {
namespace {

constexpr Instant kLifespan = 1'000'000;

/// The window-width sweep, as fractions of the lifespan.
struct WindowFamily {
  const char* name;
  Instant lo;
  Instant hi;
};

const WindowFamily kWindows[] = {
    {"point", 500'000, 500'000},
    {"narrow", 500'000, 500'999},
    {"wide", 100'000, 899'999},
    {"full", 0, kForever},
};

/// One relation plus both storage images, cached per size: generation
/// and file writes dwarf a bench iteration.  Benchmarks run
/// sequentially, so plain statics are safe; the temp files are removed
/// when the cache unwinds at exit.
struct StoredWorkload {
  Relation relation;
  std::shared_ptr<const ColumnRelation> column;
  std::unique_ptr<HeapFile> heap;
  std::string column_path;
  std::string heap_path;

  StoredWorkload(Relation r, std::shared_ptr<const ColumnRelation> c,
                 std::unique_ptr<HeapFile> h, std::string cp,
                 std::string hp)
      : relation(std::move(r)),
        column(std::move(c)),
        heap(std::move(h)),
        column_path(std::move(cp)),
        heap_path(std::move(hp)) {}

  ~StoredWorkload() {
    heap.reset();
    std::remove(column_path.c_str());
    std::remove(heap_path.c_str());
  }
};

const StoredWorkload& CachedWorkload(size_t n) {
  static std::map<size_t, std::unique_ptr<StoredWorkload>> cache;
  auto it = cache.find(n);
  if (it != cache.end()) return *it->second;

  WorkloadSpec spec;
  spec.num_tuples = n;
  spec.lifespan = kLifespan;
  spec.seed = 42;
  Relation relation = GenerateEmployedRelation(spec).value();

  const std::string stem = "/tmp/tagg_bench_columnar_" +
                           std::to_string(::getpid()) + "_" +
                           std::to_string(n);
  const std::string column_path = stem + ".tcr";
  const std::string heap_path = stem + ".heap";
  auto column = WriteRelationToColumnFile(relation, column_path).value();
  auto heap = WriteRelationToHeapFile(relation, heap_path).value();

  it = cache.emplace(n, std::make_unique<StoredWorkload>(
                            std::move(relation), std::move(column),
                            std::move(heap), column_path, heap_path))
           .first;
  return *it->second;
}

AggregateKind KindFor(int64_t arg) {
  return arg != 0 ? AggregateKind::kSum : AggregateKind::kCount;
}

size_t AttributeFor(AggregateKind kind) {
  return kind == AggregateKind::kCount ? AggregateOptions::kNoAttribute
                                       : kColumnValueAttribute;
}

void BM_ColumnarScan(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const WindowFamily& window =
      kWindows[static_cast<size_t>(state.range(1))];
  const AggregateKind kind = KindFor(state.range(2));
  const auto workers = static_cast<size_t>(state.range(3));
  const StoredWorkload& workload = CachedWorkload(n);
  ColumnScanStats stats;
  for (auto _ : state) {
    ColumnScanOptions options;
    options.aggregate = kind;
    options.attribute = AttributeFor(kind);
    options.window = Period(window.lo, window.hi);
    options.parallel_workers = workers;
    auto series =
        ComputeColumnScanAggregate(*workload.column, options, &stats);
    if (!series.ok()) {
      state.SkipWithError(series.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(series->intervals);
  }
  state.counters["blocks_total"] = static_cast<double>(stats.blocks_total);
  state.counters["blocks_skipped"] =
      static_cast<double>(stats.blocks_skipped);
  state.counters["blocks_summarized"] =
      static_cast<double>(stats.blocks_summarized);
  state.counters["blocks_decoded"] =
      static_cast<double>(stats.blocks_decoded);
  state.counters["bytes_pruned"] = static_cast<double>(stats.bytes_pruned);
  state.counters["bytes_decoded"] =
      static_cast<double>(stats.bytes_decoded);
  state.counters["rows_decoded"] = static_cast<double>(stats.rows_decoded);
  state.SetLabel(std::string(window.name) + "/" +
                 std::string(AggregateKindToString(kind)) + "/w" +
                 std::to_string(workers));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

void BM_HeapTableScan(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const WindowFamily& window =
      kWindows[static_cast<size_t>(state.range(1))];
  const AggregateKind kind = KindFor(state.range(2));
  const StoredWorkload& workload = CachedWorkload(n);
  for (auto _ : state) {
    BufferPool pool(workload.heap.get(), 64);
    TableScan scan(&pool);
    Relation windowed(workload.relation.schema(),
                      workload.relation.name());
    while (true) {
      auto next = scan.Next();
      if (!next.ok()) {
        state.SkipWithError(next.status().ToString().c_str());
        return;
      }
      if (!next->has_value()) break;
      Tuple& tuple = **next;
      const Instant lo = std::max(tuple.valid().start(), window.lo);
      const Instant hi = std::min(tuple.valid().end(), window.hi);
      if (lo > hi) continue;
      Status appended =
          windowed.Append(Tuple(tuple.values(), Period(lo, hi)));
      if (!appended.ok()) {
        state.SkipWithError(appended.ToString().c_str());
        return;
      }
    }
    AggregateOptions options;
    options.aggregate = kind;
    options.attribute = AttributeFor(kind);
    options.algorithm = AlgorithmKind::kAggregationTree;
    options.coalesce_equal_values = true;
    auto series = ComputeTemporalAggregate(windowed, options);
    if (!series.ok()) {
      state.SkipWithError(series.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(series->intervals);
  }
  state.SetLabel(std::string(window.name) + "/" +
                 std::string(AggregateKindToString(kind)));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

BENCHMARK(BM_ColumnarScan)
    ->ArgsProduct({{1 << 16, 1 << 20}, {0, 1, 2, 3}, {0, 1}, {1, 4}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HeapTableScan)
    ->ArgsProduct({{1 << 16, 1 << 20}, {0, 1, 2, 3}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tagg

TAGG_BENCH_MAIN()
