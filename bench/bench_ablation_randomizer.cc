// Ablation (Section 7 future work): page randomization.
//
// "If the relation might be sorted, then the best choice would be the
// aggregation tree algorithm, with the relation's pages randomized when
// they are read to avoid linearizing the aggregation tree."
//
// Compares the aggregation tree over: sorted input (pathological), sorted
// input with group-wise page randomization (the proposal; I/O order
// preserved), and truly random input (the ideal).  Sweep over the group
// size to show the recovery improving with more pages per group.

#include "bench/bench_util.h"
#include "core/aggregation_tree.h"
#include "core/page_randomizer.h"

namespace tagg {
namespace {

std::vector<Period> ApplyOrder(const std::vector<Period>& periods,
                               const std::vector<size_t>& order) {
  std::vector<Period> out;
  out.reserve(periods.size());
  for (size_t i : order) out.push_back(periods[i]);
  return out;
}

void BM_Randomizer_SortedBaseline(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto periods = bench::MakePeriods(n, 0.0, TupleOrder::kSorted);
  bench::RunCountBench(
      state, periods, [] { return AggregationTreeAggregator<CountOp>(); });
}

void BM_Randomizer_PageRandomized(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto pages_per_group = static_cast<size_t>(state.range(1));
  auto periods = bench::MakePeriods(n, 0.0, TupleOrder::kSorted);
  PageRandomizerOptions options;
  options.pages_per_group = pages_per_group;
  periods = ApplyOrder(periods, PageRandomizedOrder(periods.size(), options));
  bench::RunCountBench(
      state, periods, [] { return AggregationTreeAggregator<CountOp>(); });
}

void BM_Randomizer_FullyRandom(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto periods = bench::MakePeriods(n, 0.0, TupleOrder::kRandom);
  bench::RunCountBench(
      state, periods, [] { return AggregationTreeAggregator<CountOp>(); });
}

BENCHMARK(BM_Randomizer_SortedBaseline)
    ->RangeMultiplier(2)
    ->Range(1 << 12, bench::kMaxTuples)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Randomizer_PageRandomized)
    ->ArgsProduct({benchmark::CreateRange(1 << 12, bench::kMaxTuples, 2),
                   {1, 4, 16, 64}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Randomizer_FullyRandom)
    ->RangeMultiplier(2)
    ->Range(1 << 12, bench::kMaxTuples)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tagg

TAGG_BENCH_MAIN()
