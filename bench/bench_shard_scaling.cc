// Shard-scaling benchmark: the horizontally sharded live service
// (src/shard) against its own 1-shard configuration, which serves through
// the identical code path minus the scatter.
//
//   * BM_Shard_ScatterOverAll    — full-line AggregateOver across shard
//     counts {1,2,4,8}: the scatter fans one sub-query per shard onto the
//     bounded executor and stitches the series; 1 shard is the no-scatter
//     baseline.
//   * BM_Shard_ScatterOverNarrow — a 1%-of-lifespan range: the router
//     clips first, so most shards are never touched and the cost should
//     stay flat in the shard count.
//   * BM_Shard_AggregateAt       — the point probe: routed to exactly one
//     shard, O(depth) regardless of topology size.
//   * BM_Shard_Ingest            — batch-load throughput: per-shard
//     fragment batches + one COW publish per shard; straddle clipping is
//     the marginal cost over the unsharded writer.
//   * BM_Shard_Rebalance         — Reshard() round-trips between two
//     topologies: the full replay of every tuple plus the one-swap cutover,
//     i.e. the price of a live rebalance readers never block on.
//
// Counters carry the shard count and logical tuple count so
// tools/check_bench_json.py can assert the scaling family stayed intact.

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "shard/sharded_service.h"
#include "temporal/catalog.h"

namespace tagg {
namespace {

constexpr size_t kTuples = 50'000;
constexpr Instant kLifespan = 1'000'000;

std::vector<Tuple> EventTuples(size_t n, uint64_t seed = 42) {
  std::vector<Tuple> tuples;
  tuples.reserve(n);
  for (const Period& p :
       bench::MakePeriods(n, /*long_lived_fraction=*/0.4,
                          TupleOrder::kRandom, /*k=*/1,
                          /*k_percentage=*/0.02, seed)) {
    tuples.emplace_back(std::vector<Value>{Value::Double(0.0)}, p);
  }
  return tuples;
}

struct LoadedShards {
  Catalog catalog;
  std::unique_ptr<shard::ShardedLiveService> service;
};

std::unique_ptr<LoadedShards> MakeService(size_t shards) {
  auto loaded = std::make_unique<LoadedShards>();
  Result<Schema> schema = Schema::Make({{"value", ValueType::kDouble}});
  if (!schema.ok()) std::abort();
  if (!loaded->catalog
           .Register(std::make_shared<Relation>(std::move(*schema),
                                                "events"))
           .ok()) {
    std::abort();
  }
  shard::ShardedServiceOptions options;
  options.shards = shards;
  options.hot_window = Period(0, kLifespan - 1);
  loaded->service = std::make_unique<shard::ShardedLiveService>(options);
  if (!loaded->service
           ->RegisterIndex(loaded->catalog, "events", AggregateKind::kCount)
           .ok()) {
    std::abort();
  }
  return loaded;
}

/// One preloaded service per shard count, shared across the read benches
/// (single-threaded registration: none of these benches use ->Threads).
shard::ShardedLiveService& LoadedFor(size_t shards) {
  static auto* cache =
      new std::map<size_t, std::unique_ptr<LoadedShards>>();
  auto it = cache->find(shards);
  if (it == cache->end()) {
    std::unique_ptr<LoadedShards> loaded = MakeService(shards);
    if (!loaded->service->IngestBatch("events", EventTuples(kTuples)).ok() ||
        !loaded->service->Flush().ok()) {
      std::abort();
    }
    // Re-cut the uniform boot boundaries at the data's quantiles — the
    // topology a live deployment would actually serve.
    if (shards > 1 && !loaded->service->Reshard(shards).ok()) std::abort();
    it = cache->emplace(shards, std::move(loaded)).first;
  }
  return *it->second->service;
}

void ReportShardCounters(benchmark::State& state,
                         const shard::ShardedLiveService& service) {
  state.counters["shards"] = static_cast<double>(service.num_shards());
  state.counters["tuples"] = static_cast<double>(kTuples);
}

void BM_Shard_ScatterOverAll(benchmark::State& state) {
  shard::ShardedLiveService& service =
      LoadedFor(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    Result<AggregateSeries> series = service.AggregateOver(
        "events", AggregateKind::kCount, AggregateOptions::kNoAttribute,
        Period::All());
    if (!series.ok()) {
      state.SkipWithError(series.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(series);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  ReportShardCounters(state, service);
}
BENCHMARK(BM_Shard_ScatterOverAll)
    ->ArgNames({"shards"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_Shard_ScatterOverNarrow(benchmark::State& state) {
  shard::ShardedLiveService& service =
      LoadedFor(static_cast<size_t>(state.range(0)));
  const Period narrow(kLifespan / 2, kLifespan / 2 + kLifespan / 100);
  for (auto _ : state) {
    Result<AggregateSeries> series = service.AggregateOver(
        "events", AggregateKind::kCount, AggregateOptions::kNoAttribute,
        narrow);
    if (!series.ok()) {
      state.SkipWithError(series.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(series);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  ReportShardCounters(state, service);
}
BENCHMARK(BM_Shard_ScatterOverNarrow)
    ->ArgNames({"shards"})
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

void BM_Shard_AggregateAt(benchmark::State& state) {
  shard::ShardedLiveService& service =
      LoadedFor(static_cast<size_t>(state.range(0)));
  Instant t = 0;
  for (auto _ : state) {
    Result<Value> value = service.AggregateAt(
        "events", AggregateKind::kCount, AggregateOptions::kNoAttribute, t);
    if (!value.ok()) {
      state.SkipWithError(value.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(value);
    t = (t + 7919) % kLifespan;  // stride the probes across the shards
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  ReportShardCounters(state, service);
}
BENCHMARK(BM_Shard_AggregateAt)
    ->ArgNames({"shards"})
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

void BM_Shard_Ingest(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  const std::vector<Tuple> tuples = EventTuples(kTuples / 5, /*seed=*/7);
  for (auto _ : state) {
    state.PauseTiming();
    std::unique_ptr<LoadedShards> loaded = MakeService(shards);
    state.ResumeTiming();
    std::vector<Tuple> batch = tuples;
    if (!loaded->service->IngestBatch("events", std::move(batch)).ok() ||
        !loaded->service->Flush().ok()) {
      state.SkipWithError("sharded ingest failed");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tuples.size()));
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["tuples"] = static_cast<double>(tuples.size());
}
BENCHMARK(BM_Shard_Ingest)
    ->ArgNames({"shards"})
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_Shard_Rebalance(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  std::unique_ptr<LoadedShards> loaded = MakeService(shards);
  if (!loaded->service->IngestBatch("events", EventTuples(kTuples)).ok() ||
      !loaded->service->Flush().ok()) {
    state.SkipWithError("sharded load failed");
    return;
  }
  size_t next = shards + 1;
  for (auto _ : state) {
    if (!loaded->service->Reshard(next).ok()) {
      state.SkipWithError("reshard failed");
      return;
    }
    next = next == shards ? shards + 1 : shards;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kTuples));
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["tuples"] = static_cast<double>(kTuples);
}
BENCHMARK(BM_Shard_Rebalance)
    ->ArgNames({"shards"})
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tagg

TAGG_BENCH_MAIN()
