// Ablation (Section 6): choice of aggregate.
//
// "We found that the choice of aggregate did not materially alter the
// results."  Runs the aggregation tree over the same relation with all
// five aggregate operators; COUNT carries the smallest state (8 bytes
// here, 4 in the paper), AVG the largest (sum + count).

#include "bench/bench_util.h"
#include "core/aggregation_tree.h"

namespace tagg {
namespace {

constexpr size_t kTuples = 16 * 1024;

template <typename Op>
void RunAggregateBench(benchmark::State& state) {
  const auto periods = bench::MakePeriods(kTuples, 0.4, TupleOrder::kRandom);
  size_t intervals = 0;
  for (auto _ : state) {
    AggregationTreeAggregator<Op> agg;
    double v = 1.0;
    for (const Period& p : periods) {
      (void)agg.Add(p, v);
      v += 1.0;
    }
    auto out = agg.FinishTyped();
    bench::KeepAlive(*out);
    intervals = out->size();
  }
  state.counters["intervals"] = static_cast<double>(intervals);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kTuples));
}

void BM_Aggregate_Count(benchmark::State& state) {
  RunAggregateBench<CountOp>(state);
}
void BM_Aggregate_Sum(benchmark::State& state) {
  RunAggregateBench<SumOp>(state);
}
void BM_Aggregate_Min(benchmark::State& state) {
  RunAggregateBench<MinOp>(state);
}
void BM_Aggregate_Max(benchmark::State& state) {
  RunAggregateBench<MaxOp>(state);
}
void BM_Aggregate_Avg(benchmark::State& state) {
  RunAggregateBench<AvgOp>(state);
}

BENCHMARK(BM_Aggregate_Count)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Aggregate_Sum)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Aggregate_Min)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Aggregate_Max)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Aggregate_Avg)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tagg

TAGG_BENCH_MAIN()
