// Ablation (Section 7 future work): the balanced aggregation tree.
//
// Compares, on both sorted and random input:
//   * the paper's unbalanced aggregation tree (O(n^2) when sorted);
//   * the AVL-balanced variant (O(n log n) regardless of order, at the
//     price of rotations and a height word per node);
//   * the paper's recommended sorted-input strategy (k-ordered, k = 1).
//
// Expected: on sorted input the balanced tree crushes the unbalanced tree
// but still loses to the k = 1 k-ordered tree (which also uses a fraction
// of the memory); on random input the rotation overhead makes it a wash.

#include "bench/bench_util.h"
#include "core/aggregation_tree.h"
#include "core/balanced_tree.h"
#include "core/k_ordered_tree.h"

namespace tagg {
namespace {

void BM_Balanced_Sorted(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto periods = bench::MakePeriods(n, 0.0, TupleOrder::kSorted);
  bench::RunCountBench(state, periods,
                       [] { return BalancedTreeAggregator<CountOp>(); });
}

void BM_Unbalanced_Sorted(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto periods = bench::MakePeriods(n, 0.0, TupleOrder::kSorted);
  bench::RunCountBench(
      state, periods, [] { return AggregationTreeAggregator<CountOp>(); });
}

void BM_KtreeK1_Sorted(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto periods = bench::MakePeriods(n, 0.0, TupleOrder::kSorted);
  bench::RunCountBench(
      state, periods, [] { return KOrderedTreeAggregator<CountOp>(1); });
}

void BM_Balanced_Random(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto periods = bench::MakePeriods(n, 0.0, TupleOrder::kRandom);
  bench::RunCountBench(state, periods,
                       [] { return BalancedTreeAggregator<CountOp>(); });
}

void BM_Unbalanced_Random(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto periods = bench::MakePeriods(n, 0.0, TupleOrder::kRandom);
  bench::RunCountBench(
      state, periods, [] { return AggregationTreeAggregator<CountOp>(); });
}

BENCHMARK(BM_Balanced_Sorted)
    ->RangeMultiplier(2)
    ->Range(bench::kMinTuples, bench::kMaxTuples)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Unbalanced_Sorted)
    ->RangeMultiplier(2)
    ->Range(bench::kMinTuples, bench::kMaxTuples)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KtreeK1_Sorted)
    ->RangeMultiplier(2)
    ->Range(bench::kMinTuples, bench::kMaxTuples)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Balanced_Random)
    ->RangeMultiplier(2)
    ->Range(bench::kMinTuples, bench::kMaxTuples)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Unbalanced_Random)
    ->RangeMultiplier(2)
    ->Range(bench::kMinTuples, bench::kMaxTuples)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tagg

TAGG_BENCH_MAIN()
