// Ablation (Section 6.3): the number of unique timestamps.
//
// "The tests described in this paper have randomly generated start times,
// which leads to many unique tuple start times.  If there were many fewer
// unique timestamps ... then less memory would be required to store the
// 'state' for each of the algorithms.  This last case would especially
// improve the memory requirement of the aggregation tree and the linked
// list algorithms."
//
// Fixes n = 16K tuples and shrinks the lifespan from 1M instants down to
// 64, multiplying timestamp collisions.  Watch peak_nodes fall with the
// lifespan while the tuple count stays constant — and the run time fall
// with it (smaller state to search).

#include "bench/bench_util.h"
#include "core/aggregation_tree.h"
#include "core/linked_list_agg.h"

namespace tagg {
namespace {

constexpr size_t kTuples = 16 * 1024;

std::vector<Period> CoarsePeriods(Instant lifespan) {
  WorkloadSpec spec;
  spec.num_tuples = kTuples;
  spec.lifespan = lifespan;
  spec.short_min_duration = 1;
  spec.short_max_duration = std::max<Instant>(lifespan / 10, 1);
  spec.seed = 42;
  auto relation = GenerateEmployedRelation(spec).value();
  std::vector<Period> periods;
  periods.reserve(relation.size());
  for (const Tuple& t : relation) periods.push_back(t.valid());
  return periods;
}

void BM_UniqueTs_AggregationTree(benchmark::State& state) {
  const auto periods = CoarsePeriods(state.range(0));
  bench::RunCountBench(
      state, periods, [] { return AggregationTreeAggregator<CountOp>(); });
}

void BM_UniqueTs_LinkedList(benchmark::State& state) {
  const auto periods = CoarsePeriods(state.range(0));
  bench::RunCountBench(state, periods,
                       [] { return LinkedListAggregator<CountOp>(); });
}

BENCHMARK(BM_UniqueTs_AggregationTree)
    ->RangeMultiplier(16)
    ->Range(64, 1 << 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_UniqueTs_LinkedList)
    ->RangeMultiplier(16)
    ->Range(64, 1 << 20)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tagg

TAGG_BENCH_MAIN()
