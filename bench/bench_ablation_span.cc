// Ablation (Sections 2 and 7): temporal grouping by span.
//
// "If the number of spans is much smaller than the number of constant
// intervals, then fewer 'buckets' need to be maintained ... the
// performance of the slower algorithm tested here (the linked list) would
// be expected to improve."
//
// Sweeps the span width over a fixed relation: wide spans mean few
// buckets (the span aggregator flies, the linked list over spans is fine);
// instant grouping is the constant-interval-count extreme.

#include "bench/bench_util.h"
#include "core/linked_list_agg.h"
#include "core/span_agg.h"

namespace tagg {
namespace {

constexpr size_t kTuples = 16 * 1024;
constexpr Instant kLifespan = 1'000'000;

void BM_Span_BucketArray(benchmark::State& state) {
  const auto span_width = static_cast<Instant>(state.range(0));
  const auto periods =
      bench::MakePeriods(kTuples, 0.0, TupleOrder::kRandom);
  size_t buckets = 0;
  for (auto _ : state) {
    auto agg = SpanAggregator<CountOp>::Make(Period(0, kLifespan - 1),
                                             span_width);
    if (!agg.ok()) {
      state.SkipWithError(agg.status().ToString().c_str());
      return;
    }
    for (const Period& p : periods) {
      (void)agg->Add(p, 0.0);
    }
    auto out = agg->FinishTyped();
    bench::KeepAlive(*out);
    buckets = agg->bucket_count();
  }
  state.counters["buckets"] = static_cast<double>(buckets);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kTuples));
}

// The instant-grouping extreme for the same relation: one bucket per
// constant interval, via the linked list the paper calls out.
void BM_Span_InstantGroupingLinkedList(benchmark::State& state) {
  const auto periods =
      bench::MakePeriods(kTuples, 0.0, TupleOrder::kRandom);
  bench::RunCountBench(state, periods,
                       [] { return LinkedListAggregator<CountOp>(); });
}

BENCHMARK(BM_Span_BucketArray)
    ->RangeMultiplier(10)
    ->Range(100, 100000)  // 10000 buckets down to 10
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Span_InstantGroupingLinkedList)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tagg

TAGG_BENCH_MAIN()
