// Figure 7: query evaluation time on ORDERED / almost-ordered relations
// WITHOUT long-lived tuples.
//
// Series, as in the paper's legend:
//   * Linked List           — over the sorted relation;
//   * Aggregation Tree      — over the sorted relation (degenerates to a
//                             linear list, ~O(n^2): the paper's pathology);
//   * Ktree K=400/40/4      — k-ordered aggregation tree over relations
//                             perturbed to k with percentage 0.02 (the
//                             paper found the k value dominates the
//                             k-ordered-percentage effect);
//   * Ktree, sorted, K=1    — the paper's recommended strategy.
//
// Expected shape: smaller k is faster; the aggregation tree is worst at
// scale; K=1 on sorted input wins.

#include "bench/bench_util.h"
#include "core/aggregation_tree.h"
#include "core/k_ordered_tree.h"
#include "core/linked_list_agg.h"

namespace tagg {
namespace {

constexpr double kLongLived = 0.0;
constexpr double kKPct = 0.02;

void BM_Fig7_LinkedList(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto periods = bench::MakePeriods(n, kLongLived, TupleOrder::kSorted);
  bench::RunCountBench(state, periods,
                       [] { return LinkedListAggregator<CountOp>(); });
}

void BM_Fig7_AggregationTree_Sorted(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto periods = bench::MakePeriods(n, kLongLived, TupleOrder::kSorted);
  bench::RunCountBench(
      state, periods, [] { return AggregationTreeAggregator<CountOp>(); });
}

void BM_Fig7_Ktree(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto k = state.range(1);
  const auto periods = bench::MakePeriods(
      n, kLongLived, TupleOrder::kKOrdered, k, kKPct);
  bench::RunCountBench(
      state, periods, [k] { return KOrderedTreeAggregator<CountOp>(k); });
}

void BM_Fig7_Ktree_Sorted_K1(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto periods = bench::MakePeriods(n, kLongLived, TupleOrder::kSorted);
  bench::RunCountBench(
      state, periods, [] { return KOrderedTreeAggregator<CountOp>(1); });
}

BENCHMARK(BM_Fig7_LinkedList)
    ->RangeMultiplier(2)
    ->Range(bench::kMinTuples, bench::kMaxTuples)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Fig7_AggregationTree_Sorted)
    ->RangeMultiplier(2)
    ->Range(bench::kMinTuples, bench::kMaxTuples)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Fig7_Ktree)
    ->ArgsProduct({benchmark::CreateRange(bench::kMinTuples,
                                          bench::kMaxTuples, 2),
                   {4, 40, 400}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Fig7_Ktree_Sorted_K1)
    ->RangeMultiplier(2)
    ->Range(bench::kMinTuples, bench::kMaxTuples)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tagg

TAGG_BENCH_MAIN()
