// Shared helpers for the benchmark suite.
//
// Every bench reproduces a table or figure from the paper's Section 6
// evaluation.  Workloads follow Table 3: 1M-instant lifespan, short-lived
// durations U[1,1000], long-lived U[20%,80%] of the lifespan, relation
// sizes 1K..64K tuples, long-lived fractions {0%, 40%, 80%}, and
// k-ordered perturbations.  The COUNT aggregate is used throughout, as in
// the paper ("we provide results only for the count aggregate").

#pragma once

#include <benchmark/benchmark.h>
#include <sys/stat.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "core/aggregates.h"
#include "core/workload.h"
#include "obs/metrics.h"
#include "temporal/period.h"

namespace tagg {
namespace bench {

/// Compiler barrier used instead of benchmark::DoNotOptimize.
///
/// google-benchmark's GCC path uses a multi-alternative "+m,r" inline-asm
/// constraint that GCC 12 miscompiles around values materialized through
/// by-value std::variant returns (our Result<T>): the consumed value is
/// garbage.  A single-alternative "+m" constraint is immune.  See
/// bench/README note in EXPERIMENTS.md.
template <typename T>
inline void KeepAlive(T& value) {
  asm volatile("" : "+m"(value) : : "memory");
}

/// Table 3 relation sizes (in tuples).
inline constexpr int64_t kMinTuples = 1 << 10;   // 1K
inline constexpr int64_t kMaxTuples = 1 << 16;   // 64K

/// Generates a Table 3 workload and strips it down to the validity
/// periods — benchmarks time the algorithms, not Value boxing.
inline std::vector<Period> MakePeriods(size_t n, double long_lived_fraction,
                                       TupleOrder order, int64_t k = 1,
                                       double k_percentage = 0.02,
                                       uint64_t seed = 42) {
  WorkloadSpec spec;
  spec.num_tuples = n;
  spec.lifespan = 1'000'000;
  spec.long_lived_fraction = long_lived_fraction;
  spec.order = order;
  spec.k = k;
  spec.k_percentage = k_percentage;
  spec.seed = seed;
  auto relation = GenerateEmployedRelation(spec);
  if (!relation.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 relation.status().ToString().c_str());
    std::abort();
  }
  std::vector<Period> periods;
  periods.reserve(relation->size());
  for (const Tuple& t : relation.value()) periods.push_back(t.valid());
  return periods;
}

/// Streams `periods` through a freshly constructed aggregator per
/// iteration and reports items/sec plus the memory counters of the last
/// run.  MakeAgg: () -> aggregator with Add(Period, double) and
/// FinishTyped().
template <typename MakeAgg>
void RunCountBench(benchmark::State& state,
                   const std::vector<Period>& periods, MakeAgg make_agg) {
  size_t peak_nodes = 0;
  size_t peak_paper_bytes = 0;
  size_t intervals = 0;
  for (auto _ : state) {
    auto agg = make_agg();
    for (const Period& p : periods) {
      const Status st = agg.Add(p, 0.0);
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
    }
    auto out = agg.FinishTyped();
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    KeepAlive(*out);
    peak_nodes = agg.stats().peak_live_nodes;
    peak_paper_bytes = agg.stats().peak_paper_bytes;
    intervals = out->size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(periods.size()));
  state.counters["tuples"] = static_cast<double>(periods.size());
  state.counters["peak_nodes"] = static_cast<double>(peak_nodes);
  state.counters["peak_bytes16"] = static_cast<double>(peak_paper_bytes);
  state.counters["intervals"] = static_cast<double>(intervals);
}

/// Drop-in replacement for BENCHMARK_MAIN() that always produces
/// machine-readable output: unless the caller passed --benchmark_out
/// themselves, timings are written as google-benchmark JSON to
/// bench_results/<bench>.json, and a snapshot of the obs metrics
/// registry is written alongside as bench_results/<bench>.metrics.json
/// (both validated by tools/check_bench_json.py in CI).
inline int BenchMain(int argc, char** argv, const char* source_file) {
  std::string base = source_file;
  const size_t slash = base.find_last_of('/');
  if (slash != std::string::npos) base = base.substr(slash + 1);
  const size_t dot = base.find_last_of('.');
  if (dot != std::string::npos) base = base.substr(0, dot);

  bool caller_controls_output = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out", 0) == 0) {
      caller_controls_output = true;
    }
  }
  const std::string out_dir = "bench_results";
  ::mkdir(out_dir.c_str(), 0755);
  std::vector<std::string> extra;
  if (!caller_controls_output) {
    extra.push_back("--benchmark_out=" + out_dir + "/" + base + ".json");
    extra.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc) + extra.size());
  for (int i = 0; i < argc; ++i) args.push_back(argv[i]);
  for (std::string& s : extra) args.push_back(s.data());
  int patched_argc = static_cast<int>(args.size());
  benchmark::Initialize(&patched_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(patched_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const std::string metrics_path = out_dir + "/" + base + ".metrics.json";
  if (std::FILE* f = std::fopen(metrics_path.c_str(), "w")) {
    const std::string json = obs::MetricsRegistry::Global().ToJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  return 0;
}

}  // namespace bench
}  // namespace tagg

/// Use in place of BENCHMARK_MAIN() in every bench/*.cc target.
#define TAGG_BENCH_MAIN()                                   \
  int main(int argc, char** argv) {                         \
    return tagg::bench::BenchMain(argc, argv, __FILE__);    \
  }
