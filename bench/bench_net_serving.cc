// Network serving benchmark: throughput and latency of the binary
// protocol over loopback TCP, against an in-process taggd server.
//
//   * BM_Net_PingPong            — protocol floor: one frame each way,
//     no executor work (Ping is answered inline on the loop thread);
//   * BM_Net_InsertRoundTrip     — strict request-response ingest;
//   * BM_Net_AggregateAt         — strict request-response point query
//     against a preloaded index (loopback RTT + executor dispatch +
//     one root-path probe);
//   * BM_Net_Pipelined_AggregateAt/depth:D — send D requests, then read
//     D responses: amortizes the RTT and exercises the reorder buffer;
//     depth stays under the server's pipeline cap so reads never pause;
//   * BM_Net_Connections_AggregateAt/threads:N — one connection per
//     thread, strict request-response: throughput vs connection count
//     across the loop threads and the executor pool.
//
// Every thread owns its own Client (the client is a cursor, not a pool).
// The server is shared through a magic static and preloaded over the
// wire itself (InsertBatch + Flush), so the bench also covers the batch
// ingest path once at startup.

#include <cstdlib>
#include <optional>

#include "bench/bench_util.h"
#include "live/service.h"
#include "net/client.h"
#include "server/server.h"

namespace tagg {
namespace {

constexpr size_t kPreloadTuples = 100'000;
constexpr Instant kLifespan = 1'000'000;
constexpr uint8_t kCountAggregate = 0;  // AggregateKind::kCount on the wire

/// One in-process server for the whole binary run, preloaded with the
/// Table 3 workload over the wire.
class ServingFixture {
 public:
  ServingFixture() {
    Result<Schema> schema = Schema::Make({{"value", ValueType::kDouble}});
    if (!schema.ok()) std::abort();
    if (!catalog_
             .Register(std::make_shared<Relation>(std::move(*schema),
                                                  "events"))
             .ok()) {
      std::abort();
    }
    if (!live_.RegisterIndex(catalog_, "events", AggregateKind::kCount)
             .ok()) {
      std::abort();
    }
    server::ServerOptions options;
    options.port = 0;  // ephemeral
    options.num_loops = 2;
    options.num_workers = 4;
    options.executor_queue = 4096;
    server_.emplace(options, server::ServingState{&catalog_, &live_});
    if (!server_->Start().ok()) std::abort();
    Preload();
  }

  ~ServingFixture() { server_->Shutdown(); }

  uint16_t port() const { return server_->port(); }

  net::Client Connect() {
    Result<net::Client> client = net::Client::ConnectTo(port());
    if (!client.ok()) std::abort();
    return std::move(*client);
  }

 private:
  void Preload() {
    const std::vector<Period> periods = bench::MakePeriods(
        kPreloadTuples, /*long_lived_fraction=*/0.4, TupleOrder::kRandom);
    net::Client client = Connect();
    std::vector<net::WireTuple> batch;
    batch.reserve(4096);
    for (const Period& p : periods) {
      batch.push_back({p.start(), p.end(), {Value::Double(1.0)}});
      if (batch.size() == 4096) {
        if (!client.InsertBatch("events", batch).ok()) std::abort();
        batch.clear();
      }
    }
    if (!batch.empty() && !client.InsertBatch("events", batch).ok()) {
      std::abort();
    }
    if (!client.Flush("events").ok()) std::abort();
  }

  Catalog catalog_;
  LiveService live_;
  std::optional<server::Server> server_;
};

ServingFixture& Fixture() {
  static ServingFixture fixture;
  return fixture;
}

void BM_Net_PingPong(benchmark::State& state) {
  net::Client client = Fixture().Connect();
  for (auto _ : state) {
    const Status st = client.Ping();
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Net_InsertRoundTrip(benchmark::State& state) {
  net::Client client = Fixture().Connect();
  Instant t = 0;
  for (auto _ : state) {
    const Status st = client.Insert(
        "events", {t % kLifespan, t % kLifespan + 10, {Value::Double(1.0)}});
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    t += 9973;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Net_AggregateAt(benchmark::State& state) {
  net::Client client = Fixture().Connect();
  Instant t = 0;
  for (auto _ : state) {
    Result<net::AggregateAtResponse> got = client.AggregateAt(
        "events", kCountAggregate, net::kWireNoAttribute, t % kLifespan);
    if (!got.ok()) {
      state.SkipWithError(got.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(*got);
    t += 9973;
  }
  state.SetItemsProcessed(state.iterations());
}

/// Send `depth` point queries, then read `depth` responses: the reorder
/// buffer keeps them in request order, and the RTT is paid once per
/// batch instead of once per request.
void BM_Net_Pipelined_AggregateAt(benchmark::State& state) {
  const size_t depth = static_cast<size_t>(state.range(0));
  net::Client client = Fixture().Connect();
  Instant t = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < depth; ++i) {
      const Status st = client.Send(
          net::Opcode::kAggregateAt,
          net::EncodeAggregateAt({"events", kCountAggregate,
                                  net::kWireNoAttribute, t % kLifespan}));
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
      t += 9973;
    }
    for (size_t i = 0; i < depth; ++i) {
      Result<net::RawResponse> got = client.Receive();
      if (!got.ok() || got->code != StatusCode::kOk) {
        state.SkipWithError("pipelined receive failed");
        return;
      }
      bench::KeepAlive(*got);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(depth));
  state.counters["depth"] = static_cast<double>(depth);
}

/// One connection per thread, strict request-response point queries.
void BM_Net_Connections_AggregateAt(benchmark::State& state) {
  net::Client client = Fixture().Connect();
  Instant t = 9973 * static_cast<Instant>(state.thread_index() + 1);
  for (auto _ : state) {
    Result<net::AggregateAtResponse> got = client.AggregateAt(
        "events", kCountAggregate, net::kWireNoAttribute, t % kLifespan);
    if (!got.ok()) {
      state.SkipWithError(got.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(*got);
    t += 9973;
  }
  state.SetItemsProcessed(state.iterations());
  // kAvgThreads: each thread reports the same value; without it the
  // per-thread counters would be summed into threads^2.
  state.counters["connections"] =
      benchmark::Counter(static_cast<double>(state.threads()),
                         benchmark::Counter::kAvgThreads);
}

BENCHMARK(BM_Net_PingPong)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Net_InsertRoundTrip)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Net_AggregateAt)->Unit(benchmark::kMicrosecond);
// Depth sweep stays under the server's pipeline cap (128).
BENCHMARK(BM_Net_Pipelined_AggregateAt)
    ->ArgNames({"depth"})
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();
BENCHMARK(BM_Net_Connections_AggregateAt)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

}  // namespace
}  // namespace tagg

TAGG_BENCH_MAIN()
