// Section 4.1 baseline: Tuma's two-scan evaluation (the only temporal
// aggregation implemented before the paper) against the paper's
// single-scan algorithms on randomly ordered relations.
//
// The scans counter makes the paper's critique visible: the two-scan
// approach reads the relation twice, everything else once.

#include "bench/bench_util.h"
#include "core/aggregation_tree.h"
#include "core/linked_list_agg.h"
#include "core/two_scan_agg.h"

namespace tagg {
namespace {

void WithScans(benchmark::State& state, size_t scans) {
  state.counters["relation_scans"] = static_cast<double>(scans);
}

void BM_TwoScan(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const double ll = static_cast<double>(state.range(1)) / 100.0;
  const auto periods = bench::MakePeriods(n, ll, TupleOrder::kRandom);
  bench::RunCountBench(state, periods,
                       [] { return TwoScanAggregator<CountOp>(); });
  WithScans(state, 2);
}

void BM_SingleScan_AggregationTree(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const double ll = static_cast<double>(state.range(1)) / 100.0;
  const auto periods = bench::MakePeriods(n, ll, TupleOrder::kRandom);
  bench::RunCountBench(
      state, periods, [] { return AggregationTreeAggregator<CountOp>(); });
  WithScans(state, 1);
}

void BM_SingleScan_LinkedList(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const double ll = static_cast<double>(state.range(1)) / 100.0;
  const auto periods = bench::MakePeriods(n, ll, TupleOrder::kRandom);
  bench::RunCountBench(state, periods,
                       [] { return LinkedListAggregator<CountOp>(); });
  WithScans(state, 1);
}

BENCHMARK(BM_TwoScan)
    ->ArgsProduct({benchmark::CreateRange(1 << 10, 1 << 14, 2), {0, 80}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SingleScan_AggregationTree)
    ->ArgsProduct({benchmark::CreateRange(1 << 10, 1 << 14, 2), {0, 80}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SingleScan_LinkedList)
    ->ArgsProduct({benchmark::CreateRange(1 << 10, 1 << 14, 2), {0, 80}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tagg

TAGG_BENCH_MAIN()
