// Table 2: k-ordered-percentage worked examples (n = 10000, k = 100),
// plus the cost of measuring sortedness itself (the statistic a query
// optimizer would gather).
//
// The percentage counters on each benchmark reproduce the Table 2 column:
//   sorted -> 0, one 100-distance swap -> 0.0002, ten swaps -> 0.002,
//   one tuple at each displacement 1..100 -> 0.00505,
//   ten tuples at each displacement 1..100 -> 0.0505.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include "core/sortedness.h"
#include "core/workload.h"

namespace tagg {
namespace {

constexpr size_t kN = 10000;
constexpr int64_t kK = 100;

std::vector<Period> SortedPeriods(size_t n) {
  std::vector<Period> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const auto s = static_cast<Instant>(i * 10);
    out.emplace_back(s, s + 5);
  }
  return out;
}

void MeasureRow(benchmark::State& state, const std::vector<Period>& periods) {
  double pct = 0;
  int64_t measured_k = 0;
  for (auto _ : state) {
    const auto report = MeasureSortedness(periods);
    pct = KOrderedPercentage(report, kK);
    measured_k = report.k;
    bench::KeepAlive(pct);
  }
  state.counters["k_ordered_percentage"] = pct;
  state.counters["measured_k"] = static_cast<double>(measured_k);
}

void BM_Table2_Row1_Sorted(benchmark::State& state) {
  MeasureRow(state, SortedPeriods(kN));
}

void BM_Table2_Row2_OneSwap(benchmark::State& state) {
  auto periods = SortedPeriods(kN);
  std::swap(periods[500], periods[600]);
  MeasureRow(state, periods);
}

void BM_Table2_Row3_TenSwaps(benchmark::State& state) {
  auto periods = SortedPeriods(kN);
  for (int i = 0; i < 10; ++i) {
    const size_t base = static_cast<size_t>(i) * 900;
    std::swap(periods[base], periods[base + 100]);
  }
  MeasureRow(state, periods);
}

// Rows 4 and 5 are histogram configurations in the paper; evaluate the
// formula directly.
void BM_Table2_Row4_Histogram(benchmark::State& state) {
  std::vector<size_t> histogram(101, 0);
  for (size_t i = 1; i <= 100; ++i) histogram[i] = 1;
  double pct = 0;
  for (auto _ : state) {
    pct = KOrderedPercentageFromHistogram(histogram, kK, kN).value();
    bench::KeepAlive(pct);
  }
  state.counters["k_ordered_percentage"] = pct;
}

void BM_Table2_Row5_Histogram(benchmark::State& state) {
  std::vector<size_t> histogram(101, 0);
  for (size_t i = 1; i <= 100; ++i) histogram[i] = 10;
  double pct = 0;
  for (auto _ : state) {
    pct = KOrderedPercentageFromHistogram(histogram, kK, kN).value();
    bench::KeepAlive(pct);
  }
  state.counters["k_ordered_percentage"] = pct;
}

// Cost of the measurement on generated Table 3 workloads.
void BM_MeasureSortedness_Workload(benchmark::State& state) {
  WorkloadSpec spec;
  spec.num_tuples = static_cast<size_t>(state.range(0));
  spec.order = TupleOrder::kKOrdered;
  spec.k = 40;
  spec.k_percentage = 0.08;
  auto relation = GenerateEmployedRelation(spec).value();
  double pct = 0;
  for (auto _ : state) {
    const auto report = MeasureSortedness(relation);
    pct = KOrderedPercentage(report, report.k);
    bench::KeepAlive(pct);
  }
  state.counters["k_ordered_percentage"] = pct;
}

BENCHMARK(BM_Table2_Row1_Sorted);
BENCHMARK(BM_Table2_Row2_OneSwap);
BENCHMARK(BM_Table2_Row3_TenSwaps);
BENCHMARK(BM_Table2_Row4_Histogram);
BENCHMARK(BM_Table2_Row5_Histogram);
BENCHMARK(BM_MeasureSortedness_Workload)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 16)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tagg

TAGG_BENCH_MAIN()
