// Live index serving benchmark: resident tree vs rebuild-per-query.
//
// The batch algorithms pay the whole tree build on every query; the live
// index (src/live) pays it once and then serves from the resident tree.
// This bench quantifies the gap and the behaviour under concurrent load:
//
//   * BM_Live_RebuildPerQuery   — the baseline: build an aggregation tree
//     over the full relation and emit the series, once per iteration;
//   * BM_Live_AggregateOverAll  — the same answer from the resident index
//     (the ">= 10x for repeated AggregateOver" acceptance check);
//   * BM_Live_AggregateOverNarrow — a 1%-of-lifespan range query, the
//     typical serving shape: O(depth + answer) instead of O(n);
//   * BM_Live_AggregateAt       — the point query, one root path;
//   * BM_Live_ReaderScaling_*   — ->Threads({1,2,4,8}) pure-reader
//     scaling, engine/0 = COW-epoch vs engine/1 = shared_lock: the COW
//     read path takes no lock, so per-thread throughput should hold flat
//     where the rwlock's cache-line ping-pong degrades it;
//   * BM_Live_Concurrent_*      — ->Threads(1+R): thread 0 streams
//     inserts while R readers query, again per engine; the writer thread
//     reports the reclamation counters (nodes_retired / nodes_reclaimed /
//     retired_pending) so regressions in epoch reclamation show up in the
//     bench JSON;
//   * BM_Live_CowIngest         — writer-side batching ablation:
//     publish-every-N and InsertBatch sizes against the per-insert
//     publish, plus the locked engine's ingest for reference.
//
// The concurrent fixtures share one index per engine via function-local
// statics (thread-safe magic statics): google-benchmark runs the function
// on every thread, so construction must not race.

#include <algorithm>
#include <atomic>
#include <utility>

#include "bench/bench_util.h"
#include "core/aggregation_tree.h"
#include "live/live_index.h"

namespace tagg {
namespace {

constexpr size_t kTuples = 100'000;  // acceptance point: 100k tuples
constexpr Instant kLifespan = 1'000'000;

const std::vector<Period>& LoadPeriods() {
  static const std::vector<Period> periods =
      bench::MakePeriods(kTuples, /*long_lived_fraction=*/0.4,
                         TupleOrder::kRandom);
  return periods;
}

/// Extra periods the concurrent writer streams in (distinct seed so they
/// do not duplicate the preload).
const std::vector<Period>& ChurnPeriods() {
  static const std::vector<Period> periods = bench::MakePeriods(
      kTuples, /*long_lived_fraction=*/0.4, TupleOrder::kRandom,
      /*k=*/1, /*k_percentage=*/0.02, /*seed=*/777);
  return periods;
}

std::unique_ptr<LiveAggregateIndex> MakeLoadedIndex(
    LiveConcurrency concurrency = LiveConcurrency::kCowEpoch) {
  LiveIndexOptions options;
  options.concurrency = concurrency;
  auto index = LiveAggregateIndex::Create(options);
  if (!index.ok()) std::abort();
  for (const Period& p : LoadPeriods()) {
    if (!(*index)->Insert(p, 0.0).ok()) std::abort();
  }
  return std::move(index).value();
}

/// engine/0 = the COW-epoch default, engine/1 = the shared_lock fallback.
LiveConcurrency EngineArg(const benchmark::State& state) {
  return state.range(0) == 0 ? LiveConcurrency::kCowEpoch
                             : LiveConcurrency::kSharedLock;
}

// --- single-threaded: resident index vs rebuild ------------------------

void BM_Live_RebuildPerQuery(benchmark::State& state) {
  const auto& periods = LoadPeriods();
  // The honest executor-path baseline: build the tree AND emit the
  // Value-boxed AggregateSeries (what a query answer is made of), once
  // per query — exactly what the batch path pays when the same aggregate
  // is asked again.
  AggregateOptions options;
  options.algorithm = AlgorithmKind::kAggregationTree;
  for (auto _ : state) {
    auto agg = MakeAggregator(options);
    if (!agg.ok()) {
      state.SkipWithError(agg.status().ToString().c_str());
      return;
    }
    for (const Period& p : periods) {
      if (!(*agg)->Add(p, 0.0).ok()) {
        state.SkipWithError("insert failed");
        return;
      }
    }
    auto out = (*agg)->Finish();
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(*out);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Live_AggregateOverAll(benchmark::State& state) {
  static const auto index = MakeLoadedIndex();
  for (auto _ : state) {
    auto series = index->AggregateOver(Period::All(), /*coalesce=*/false);
    if (!series.ok()) {
      state.SkipWithError(series.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(*series);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Live_AggregateOverNarrow(benchmark::State& state) {
  static const auto index = MakeLoadedIndex();
  constexpr Instant kWidth = kLifespan / 100;  // 1% of the lifespan
  Instant lo = 0;
  for (auto _ : state) {
    auto series = index->AggregateOver(Period(lo, lo + kWidth - 1),
                                       /*coalesce=*/false);
    if (!series.ok()) {
      state.SkipWithError(series.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(*series);
    lo = (lo + kWidth) % (kLifespan - kWidth);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Live_AggregateAt(benchmark::State& state) {
  static const auto index = MakeLoadedIndex();
  Instant t = 0;
  for (auto _ : state) {
    auto value = index->AggregateAt(t);
    if (!value.ok()) {
      state.SkipWithError(value.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(*value);
    t = (t + 9973) % kLifespan;  // prime stride: spread over the tree
  }
  state.SetItemsProcessed(state.iterations());
}

// --- concurrent: per-engine reader scaling -----------------------------

/// Shared fixture per engine, alive for the whole binary run (the index
/// keeps absorbing churn across run families; the tree only grows, which
/// matches a long-lived serving deployment).
struct ConcurrentShared {
  explicit ConcurrentShared(LiveConcurrency concurrency)
      : index(MakeLoadedIndex(concurrency)) {}
  std::unique_ptr<LiveAggregateIndex> index;
  std::atomic<size_t> churn_cursor{0};
};

ConcurrentShared& Shared(LiveConcurrency concurrency) {
  static ConcurrentShared cow(LiveConcurrency::kCowEpoch);
  static ConcurrentShared locked(LiveConcurrency::kSharedLock);
  return concurrency == LiveConcurrency::kCowEpoch ? cow : locked;
}

void ReportReclaimCounters(benchmark::State& state,
                           const LiveAggregateIndex& index) {
  const LiveIndexStats stats = index.Stats();
  state.counters["nodes_retired"] = static_cast<double>(stats.nodes_retired);
  state.counters["nodes_reclaimed"] =
      static_cast<double>(stats.nodes_reclaimed);
  state.counters["retired_pending"] =
      static_cast<double>(stats.retired_pending);
}

void WriterLoop(benchmark::State& state) {
  auto& shared = Shared(EngineArg(state));
  const auto& churn = ChurnPeriods();
  for (auto _ : state) {
    const size_t i =
        shared.churn_cursor.fetch_add(1, std::memory_order_relaxed) %
        churn.size();
    if (!shared.index->Insert(churn[i], 0.0).ok()) {
      state.SkipWithError("insert failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["writer"] = 1.0;
  ReportReclaimCounters(state, *shared.index);
}

/// Pure reader scaling, no writer: every thread probes points.  The COW
/// engine's pin is two atomics on a thread-local-ish slot; the rwlock pays
/// a contended shared-acquire per probe.
void BM_Live_ReaderScaling_PointReads(benchmark::State& state) {
  auto& shared = Shared(EngineArg(state));
  state.SetLabel(std::string(
      LiveConcurrencyToString(shared.index->options().concurrency)));
  Instant t = 9973 * static_cast<Instant>(state.thread_index() + 1);
  for (auto _ : state) {
    auto value = shared.index->AggregateAt(t % kLifespan);
    if (!value.ok()) {
      state.SkipWithError(value.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(*value);
    t += 9973;
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    ReportReclaimCounters(state, *shared.index);
  }
}

void BM_Live_Concurrent_PointReads(benchmark::State& state) {
  if (state.thread_index() == 0) {
    WriterLoop(state);
    return;
  }
  auto& shared = Shared(EngineArg(state));
  state.SetLabel(std::string(
      LiveConcurrencyToString(shared.index->options().concurrency)));
  Instant t = 9973 * state.thread_index();
  for (auto _ : state) {
    auto value = shared.index->AggregateAt(t % kLifespan);
    if (!value.ok()) {
      state.SkipWithError(value.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(*value);
    t += 9973;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Live_Concurrent_RangeReads(benchmark::State& state) {
  if (state.thread_index() == 0) {
    WriterLoop(state);
    return;
  }
  auto& shared = Shared(EngineArg(state));
  state.SetLabel(std::string(
      LiveConcurrencyToString(shared.index->options().concurrency)));
  constexpr Instant kWidth = kLifespan / 100;
  Instant lo = kWidth * static_cast<Instant>(state.thread_index());
  for (auto _ : state) {
    auto series = shared.index->AggregateOver(
        Period(lo % (kLifespan - kWidth), lo % (kLifespan - kWidth) + kWidth),
        /*coalesce=*/false);
    if (!series.ok()) {
      state.SkipWithError(series.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(*series);
    lo += kWidth;
  }
  state.SetItemsProcessed(state.iterations());
}

// --- writer-side batching ablation -------------------------------------

/// Fresh-index ingest of a fixed tuple prefix per iteration.
/// publish_every/N amortizes the COW path copy across N inserts;
/// batch/B uses InsertBatch in chunks of B (publish_every is then moot —
/// one publish per chunk).  engine/1 gives the locked baseline.
void BM_Live_Ingest(benchmark::State& state) {
  const LiveConcurrency engine = EngineArg(state);
  const size_t publish_every = static_cast<size_t>(state.range(1));
  const size_t batch_size = static_cast<size_t>(state.range(2));
  constexpr size_t kIngest = 20'000;
  const auto& periods = LoadPeriods();
  for (auto _ : state) {
    LiveIndexOptions options;
    options.concurrency = engine;
    options.publish_every_n = publish_every;
    auto index = LiveAggregateIndex::Create(options);
    if (!index.ok()) {
      state.SkipWithError(index.status().ToString().c_str());
      return;
    }
    if (batch_size == 0) {
      for (size_t i = 0; i < kIngest; ++i) {
        if (!(*index)->Insert(periods[i], 0.0).ok()) {
          state.SkipWithError("insert failed");
          return;
        }
      }
    } else {
      std::vector<std::pair<Period, double>> batch;
      batch.reserve(batch_size);
      for (size_t i = 0; i < kIngest; i += batch_size) {
        batch.clear();
        for (size_t j = i; j < std::min(i + batch_size, kIngest); ++j) {
          batch.emplace_back(periods[j], 0.0);
        }
        if (!(*index)->InsertBatch(batch).ok()) {
          state.SkipWithError("batch insert failed");
          return;
        }
      }
    }
    (*index)->Flush();
    ReportReclaimCounters(state, **index);
    bench::KeepAlive(*index);
  }
  state.SetItemsProcessed(state.iterations() * kIngest);
}

BENCHMARK(BM_Live_RebuildPerQuery)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Live_AggregateOverAll)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Live_AggregateOverNarrow)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Live_AggregateAt)->Unit(benchmark::kMicrosecond);
// {1,2,4,8} pure readers, both engines.
BENCHMARK(BM_Live_ReaderScaling_PointReads)
    ->ArgNames({"engine"})
    ->Arg(0)
    ->Arg(1)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();
// 1 writer + {1,2,4,8} readers, both engines.
BENCHMARK(BM_Live_Concurrent_PointReads)
    ->ArgNames({"engine"})
    ->Arg(0)
    ->Arg(1)
    ->Threads(2)
    ->Threads(3)
    ->Threads(5)
    ->Threads(9)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();
BENCHMARK(BM_Live_Concurrent_RangeReads)
    ->ArgNames({"engine"})
    ->Arg(0)
    ->Arg(1)
    ->Threads(2)
    ->Threads(3)
    ->Threads(5)
    ->Threads(9)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();
// Batching ablation: COW per-insert publish vs publish-every-N vs
// InsertBatch, with the locked engine's singleton and batched ingest as
// the baseline.
BENCHMARK(BM_Live_Ingest)
    ->ArgNames({"engine", "publish_every", "batch"})
    ->Args({0, 1, 0})
    ->Args({0, 16, 0})
    ->Args({0, 256, 0})
    ->Args({0, 1, 64})
    ->Args({0, 1, 1024})
    ->Args({1, 1, 0})
    ->Args({1, 1, 1024})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tagg

TAGG_BENCH_MAIN()
