// Live index serving benchmark: resident tree vs rebuild-per-query.
//
// The batch algorithms pay the whole tree build on every query; the live
// index (src/live) pays it once and then serves from the resident tree.
// This bench quantifies the gap and the behaviour under concurrent load:
//
//   * BM_Live_RebuildPerQuery   — the baseline: build an aggregation tree
//     over the full relation and emit the series, once per iteration;
//   * BM_Live_AggregateOverAll  — the same answer from the resident index
//     (the ">= 10x for repeated AggregateOver" acceptance check);
//   * BM_Live_AggregateOverNarrow — a 1%-of-lifespan range query, the
//     typical serving shape: O(depth + answer) instead of O(n);
//   * BM_Live_AggregateAt       — the point query, one root path;
//   * BM_Live_Concurrent_*      — ->Threads(1+R): thread 0 streams
//     inserts while R readers query; per-thread items/sec shows how
//     reader throughput holds up under a live writer.
//
// The concurrent fixtures share one index via a function-local static
// (thread-safe magic static): google-benchmark runs the function on every
// thread, so construction must not race.

#include <atomic>

#include "bench/bench_util.h"
#include "core/aggregation_tree.h"
#include "live/live_index.h"

namespace tagg {
namespace {

constexpr size_t kTuples = 100'000;  // acceptance point: 100k tuples
constexpr Instant kLifespan = 1'000'000;

const std::vector<Period>& LoadPeriods() {
  static const std::vector<Period> periods =
      bench::MakePeriods(kTuples, /*long_lived_fraction=*/0.4,
                         TupleOrder::kRandom);
  return periods;
}

/// Extra periods the concurrent writer streams in (distinct seed so they
/// do not duplicate the preload).
const std::vector<Period>& ChurnPeriods() {
  static const std::vector<Period> periods = bench::MakePeriods(
      kTuples, /*long_lived_fraction=*/0.4, TupleOrder::kRandom,
      /*k=*/1, /*k_percentage=*/0.02, /*seed=*/777);
  return periods;
}

std::unique_ptr<LiveAggregateIndex> MakeLoadedIndex() {
  auto index = LiveAggregateIndex::Create(LiveIndexOptions{});
  if (!index.ok()) std::abort();
  for (const Period& p : LoadPeriods()) {
    if (!(*index)->Insert(p, 0.0).ok()) std::abort();
  }
  return std::move(index).value();
}

// --- single-threaded: resident index vs rebuild ------------------------

void BM_Live_RebuildPerQuery(benchmark::State& state) {
  const auto& periods = LoadPeriods();
  // The honest executor-path baseline: build the tree AND emit the
  // Value-boxed AggregateSeries (what a query answer is made of), once
  // per query — exactly what the batch path pays when the same aggregate
  // is asked again.
  AggregateOptions options;
  options.algorithm = AlgorithmKind::kAggregationTree;
  for (auto _ : state) {
    auto agg = MakeAggregator(options);
    if (!agg.ok()) {
      state.SkipWithError(agg.status().ToString().c_str());
      return;
    }
    for (const Period& p : periods) {
      if (!(*agg)->Add(p, 0.0).ok()) {
        state.SkipWithError("insert failed");
        return;
      }
    }
    auto out = (*agg)->Finish();
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(*out);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Live_AggregateOverAll(benchmark::State& state) {
  static const auto index = MakeLoadedIndex();
  for (auto _ : state) {
    auto series = index->AggregateOver(Period::All(), /*coalesce=*/false);
    if (!series.ok()) {
      state.SkipWithError(series.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(*series);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Live_AggregateOverNarrow(benchmark::State& state) {
  static const auto index = MakeLoadedIndex();
  constexpr Instant kWidth = kLifespan / 100;  // 1% of the lifespan
  Instant lo = 0;
  for (auto _ : state) {
    auto series = index->AggregateOver(Period(lo, lo + kWidth - 1),
                                       /*coalesce=*/false);
    if (!series.ok()) {
      state.SkipWithError(series.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(*series);
    lo = (lo + kWidth) % (kLifespan - kWidth);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Live_AggregateAt(benchmark::State& state) {
  static const auto index = MakeLoadedIndex();
  Instant t = 0;
  for (auto _ : state) {
    auto value = index->AggregateAt(t);
    if (!value.ok()) {
      state.SkipWithError(value.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(*value);
    t = (t + 9973) % kLifespan;  // prime stride: spread over the tree
  }
  state.SetItemsProcessed(state.iterations());
}

// --- concurrent: 1 writer x {1,2,4,8} readers --------------------------

/// Shared fixture for one ->Threads() run family.  Reconstructed lazily
/// when a new run observes the previous one finished (google-benchmark
/// serializes runs, so the epoch check is not racy across runs).
struct ConcurrentShared {
  std::unique_ptr<LiveAggregateIndex> index = MakeLoadedIndex();
  std::atomic<size_t> churn_cursor{0};
};

ConcurrentShared& Shared() {
  static ConcurrentShared shared;  // thread-safe magic static
  return shared;
}

void WriterLoop(benchmark::State& state) {
  auto& shared = Shared();
  const auto& churn = ChurnPeriods();
  for (auto _ : state) {
    const size_t i =
        shared.churn_cursor.fetch_add(1, std::memory_order_relaxed) %
        churn.size();
    if (!shared.index->Insert(churn[i], 0.0).ok()) {
      state.SkipWithError("insert failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["writer"] = 1.0;
}

void BM_Live_Concurrent_PointReads(benchmark::State& state) {
  if (state.thread_index() == 0) {
    WriterLoop(state);
    return;
  }
  auto& shared = Shared();
  Instant t = 9973 * state.thread_index();
  for (auto _ : state) {
    auto value = shared.index->AggregateAt(t % kLifespan);
    if (!value.ok()) {
      state.SkipWithError(value.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(*value);
    t += 9973;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Live_Concurrent_RangeReads(benchmark::State& state) {
  if (state.thread_index() == 0) {
    WriterLoop(state);
    return;
  }
  auto& shared = Shared();
  constexpr Instant kWidth = kLifespan / 100;
  Instant lo = kWidth * static_cast<Instant>(state.thread_index());
  for (auto _ : state) {
    auto series = shared.index->AggregateOver(
        Period(lo % (kLifespan - kWidth), lo % (kLifespan - kWidth) + kWidth),
        /*coalesce=*/false);
    if (!series.ok()) {
      state.SkipWithError(series.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(*series);
    lo += kWidth;
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_Live_RebuildPerQuery)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Live_AggregateOverAll)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Live_AggregateOverNarrow)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Live_AggregateAt)->Unit(benchmark::kMicrosecond);
// 1 writer + {1,2,4,8} readers.
BENCHMARK(BM_Live_Concurrent_PointReads)
    ->Threads(2)
    ->Threads(3)
    ->Threads(5)
    ->Threads(9)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();
BENCHMARK(BM_Live_Concurrent_RangeReads)
    ->Threads(2)
    ->Threads(3)
    ->Threads(5)
    ->Threads(9)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

}  // namespace
}  // namespace tagg

TAGG_BENCH_MAIN()
