// Ablation (Sections 5.1 and 7): limited-memory partitioned evaluation.
//
// Sweeps the partition count for a fixed random relation.  The
// peak_bytes16 counter shows the working set shrinking roughly linearly
// with partitions (short-lived tuples rarely straddle regions) while the
// run time stays near the single-tree cost — the trade the paper's
// future-work section anticipates.  The spill variant additionally pushes
// the clipped tuple buffers to temporary files.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include "core/partitioned_agg.h"
#include "core/workload.h"

namespace tagg {
namespace {

Relation MakeWorkload(size_t n, double long_lived) {
  WorkloadSpec spec;
  spec.num_tuples = n;
  spec.lifespan = 1'000'000;
  spec.long_lived_fraction = long_lived;
  spec.seed = 42;
  return GenerateEmployedRelation(spec).value();
}

void RunPartitioned(benchmark::State& state, bool spill) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto partitions = static_cast<size_t>(state.range(1));
  const Relation relation = MakeWorkload(n, 0.0);
  size_t peak_bytes = 0;
  for (auto _ : state) {
    PartitionedOptions options;
    options.partitions = partitions;
    options.spill_to_disk = spill;
    auto series = ComputePartitionedAggregate(relation, options);
    if (!series.ok()) {
      state.SkipWithError(series.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(series->intervals);
    peak_bytes = series->stats.peak_paper_bytes;
  }
  state.counters["peak_bytes16"] = static_cast<double>(peak_bytes);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

void BM_Partitioned_InMemory(benchmark::State& state) {
  RunPartitioned(state, /*spill=*/false);
}

void BM_Partitioned_SpillToDisk(benchmark::State& state) {
  RunPartitioned(state, /*spill=*/true);
}

// Regions are independent: parallel workers cut wall time while the
// result stays identical (tested); the paper's bibliography includes
// Bitton et al.'s parallel relational algorithms.
void BM_Partitioned_Parallel(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto workers = static_cast<size_t>(state.range(1));
  const Relation relation = MakeWorkload(n, 0.0);
  for (auto _ : state) {
    PartitionedOptions options;
    options.partitions = 64;
    options.parallel_workers = workers;
    auto series = ComputePartitionedAggregate(relation, options);
    if (!series.ok()) {
      state.SkipWithError(series.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(series->intervals);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

// Long-lived tuples straddle regions and get replicated; this variant
// quantifies the overhead of the clipping approach in its worst case.
void BM_Partitioned_LongLived80(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto partitions = static_cast<size_t>(state.range(1));
  const Relation relation = MakeWorkload(n, 0.8);
  for (auto _ : state) {
    PartitionedOptions options;
    options.partitions = partitions;
    auto series = ComputePartitionedAggregate(relation, options);
    if (!series.ok()) {
      state.SkipWithError(series.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(series->intervals);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

BENCHMARK(BM_Partitioned_InMemory)
    ->ArgsProduct({{1 << 14, 1 << 16}, {1, 4, 16, 64}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Partitioned_SpillToDisk)
    ->ArgsProduct({{1 << 14, 1 << 16}, {4, 16}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Partitioned_Parallel)
    ->ArgsProduct({{1 << 16}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Partitioned_LongLived80)
    ->ArgsProduct({{1 << 14}, {1, 16}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tagg

TAGG_BENCH_MAIN()
