// Ablation (Sections 5.1 and 7): limited-memory partitioned evaluation.
//
// Three sweeps over a fixed random relation:
//
//   * InMemory/LongLived80: the PR-1 baselines — partition count vs. the
//     peak_bytes16 working set, and the replication cost of long-lived
//     tuples.
//   * ParallelSpill: parallel_workers in {1, 2, 4, hw_concurrency} X
//     spill_to_disk in {false, true} at 16K and 1M tuples.  Both phases
//     (sharded routing, per-region builds) parallelize; per-region spill
//     files make the spill X parallel combination legal.
//   * Kernel: the phase-2 kernel ablation — the Section 5.1 aggregation
//     tree vs. the AoS endpoint-event delta sweep (PR 3) vs. the columnar
//     SoA kernel in both dispatch modes (forced scalar and the AVX2 body,
//     which silently equals scalar on hardware without AVX2).
//   * SpillBytes: the compressed-spill ablation — identical spilled
//     evaluations with the temporal-column codec on and off, reporting
//     raw vs. encoded spill bytes and the compression ratio from the obs
//     counters.
//
// Results land in bench_results/ as JSON via TAGG_BENCH_MAIN; CI diffs
// them against bench_results/baseline with tools/bench_compare.py.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

#include "core/partitioned_agg.h"
#include "core/workload.h"
#include "obs/metrics.h"

namespace tagg {
namespace {

Relation MakeWorkload(size_t n, double long_lived) {
  WorkloadSpec spec;
  spec.num_tuples = n;
  spec.lifespan = 1'000'000;
  spec.long_lived_fraction = long_lived;
  spec.seed = 42;
  return GenerateEmployedRelation(spec).value();
}

/// Workload generation at 1M tuples dwarfs a benchmark iteration; cache
/// per (n, long_lived) so every case reuses one relation.  Benchmarks run
/// sequentially, so plain statics are safe.
const Relation& CachedWorkload(size_t n, double long_lived) {
  static std::map<std::pair<size_t, int>, Relation> cache;
  const auto key = std::make_pair(n, static_cast<int>(long_lived * 100));
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, MakeWorkload(n, long_lived)).first;
  }
  return it->second;
}

void RunPartitioned(benchmark::State& state, bool spill) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto partitions = static_cast<size_t>(state.range(1));
  const Relation& relation = CachedWorkload(n, 0.0);
  size_t peak_bytes = 0;
  for (auto _ : state) {
    PartitionedOptions options;
    options.partitions = partitions;
    options.spill_to_disk = spill;
    auto series = ComputePartitionedAggregate(relation, options);
    if (!series.ok()) {
      state.SkipWithError(series.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(series->intervals);
    peak_bytes = series->stats.peak_paper_bytes;
  }
  state.counters["peak_bytes16"] = static_cast<double>(peak_bytes);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

void BM_Partitioned_InMemory(benchmark::State& state) {
  RunPartitioned(state, /*spill=*/false);
}

void BM_Partitioned_SpillToDisk(benchmark::State& state) {
  RunPartitioned(state, /*spill=*/true);
}

// The tentpole sweep: workers X spill.  Regions are disjoint time-line
// ranges, so routing shards and region builds parallelize (the paper's
// bibliography includes Bitton et al.'s parallel algorithms); per-region
// spill files keep the combination race-free.
void BM_Partitioned_ParallelSpill(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto workers = static_cast<size_t>(state.range(1));
  const bool spill = state.range(2) != 0;
  const Relation& relation = CachedWorkload(n, 0.0);
  for (auto _ : state) {
    PartitionedOptions options;
    options.partitions = 64;
    options.parallel_workers = workers;
    options.spill_to_disk = spill;
    auto series = ComputePartitionedAggregate(relation, options);
    if (!series.ok()) {
      state.SkipWithError(series.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(series->intervals);
  }
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["spill"] = spill ? 1 : 0;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

void ParallelSpillArgs(benchmark::internal::Benchmark* b) {
  std::vector<int64_t> workers{1, 2, 4};
  const auto hw =
      static_cast<int64_t>(std::thread::hardware_concurrency());
  if (hw > 0 &&
      std::find(workers.begin(), workers.end(), hw) == workers.end()) {
    workers.push_back(hw);
  }
  b->ArgsProduct({{1 << 14, 1 << 20}, workers, {0, 1}});
}

// Phase-2 kernel ablation, one family per range(1) value:
//   0 = tree            (Section 5.1 aggregation tree)
//   1 = sweep           (PR 3 AoS std::sort + scalar delta sweep)
//   2 = columnar-scalar (SoA radix sort, scalar body forced)
//   3 = columnar-simd   (SoA radix sort, AVX2 body via runtime dispatch;
//                        identical to columnar-scalar on non-AVX2 hosts)
struct KernelFamily {
  PartitionKernel kernel;
  bool force_scalar;
  const char* name;
};

const KernelFamily kKernelFamilies[] = {
    {PartitionKernel::kTree, false, "tree"},
    {PartitionKernel::kSweep, false, "sweep"},
    {PartitionKernel::kColumnar, true, "columnar-scalar"},
    {PartitionKernel::kColumnar, false, "columnar-simd"},
};

void BM_Partitioned_Kernel(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const KernelFamily& family =
      kKernelFamilies[static_cast<size_t>(state.range(1))];
  const AggregateKind kind = state.range(2) != 0 ? AggregateKind::kSum
                                                 : AggregateKind::kCount;
  const Relation& relation = CachedWorkload(n, 0.0);
  for (auto _ : state) {
    PartitionedOptions options;
    options.partitions = 64;
    options.kernel = family.kernel;
    options.force_scalar_kernel = family.force_scalar;
    options.aggregate = kind;
    options.attribute =
        kind == AggregateKind::kCount ? AggregateOptions::kNoAttribute : 1;
    auto series = ComputePartitionedAggregate(relation, options);
    if (!series.ok()) {
      state.SkipWithError(series.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(series->intervals);
  }
  state.SetLabel(std::string(family.name) + "/" +
                 std::string(AggregateKindToString(kind)));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

// Compressed-spill ablation: the same spilled columnar evaluation with
// the temporal-column codec on and off.  Byte counts come from the obs
// counters (deltas across the timed loop), so the reported ratio is the
// production metric, not a bench-side estimate.
void BM_Partitioned_SpillBytes(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const bool compress = state.range(1) != 0;
  const Relation& relation = CachedWorkload(n, 0.0);
  obs::Counter& raw_counter = obs::MetricsRegistry::Global().GetCounter(
      "tagg_partitioned_spill_raw_bytes_total",
      "Pre-codec bytes routed through partitioned spill files");
  obs::Counter& encoded_counter = obs::MetricsRegistry::Global().GetCounter(
      "tagg_partitioned_spill_encoded_bytes_total",
      "On-disk bytes written by partitioned spill files");
  const uint64_t raw_before = raw_counter.Value();
  const uint64_t encoded_before = encoded_counter.Value();
  for (auto _ : state) {
    PartitionedOptions options;
    options.partitions = 64;
    options.spill_to_disk = true;
    options.compress_spill = compress;
    options.aggregate = AggregateKind::kSum;
    options.attribute = 1;
    auto series = ComputePartitionedAggregate(relation, options);
    if (!series.ok()) {
      state.SkipWithError(series.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(series->intervals);
  }
  const double iters = static_cast<double>(state.iterations());
  const double raw =
      static_cast<double>(raw_counter.Value() - raw_before) / iters;
  const double encoded =
      static_cast<double>(encoded_counter.Value() - encoded_before) / iters;
  state.counters["spill_raw_bytes"] = raw;
  state.counters["spill_encoded_bytes"] = encoded;
  state.counters["compression_ratio"] = encoded > 0 ? raw / encoded : 0.0;
  state.SetLabel(compress ? "compressed" : "raw");
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

// Long-lived tuples straddle regions and get replicated; this variant
// quantifies the overhead of the clipping approach in its worst case.
void BM_Partitioned_LongLived80(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto partitions = static_cast<size_t>(state.range(1));
  const Relation& relation = CachedWorkload(n, 0.8);
  for (auto _ : state) {
    PartitionedOptions options;
    options.partitions = partitions;
    auto series = ComputePartitionedAggregate(relation, options);
    if (!series.ok()) {
      state.SkipWithError(series.status().ToString().c_str());
      return;
    }
    bench::KeepAlive(series->intervals);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

BENCHMARK(BM_Partitioned_InMemory)
    ->ArgsProduct({{1 << 14, 1 << 16}, {1, 4, 16, 64}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Partitioned_SpillToDisk)
    ->ArgsProduct({{1 << 14, 1 << 16}, {4, 16}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Partitioned_ParallelSpill)
    ->Apply(ParallelSpillArgs)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Partitioned_Kernel)
    ->ArgsProduct({{1 << 14, 1 << 20}, {0, 1, 2, 3}, {0, 1}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Partitioned_SpillBytes)
    ->ArgsProduct({{1 << 14, 1 << 20}, {0, 1}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Partitioned_LongLived80)
    ->ArgsProduct({{1 << 14}, {1, 16}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tagg

TAGG_BENCH_MAIN()
