// Figure 8: query evaluation time on ORDERED / almost-ordered relations
// WITH 80% long-lived tuples — the same series as Figure 7 at
// long-lived-fraction 0.8.
//
// Expected shape versus Figure 7:
//   * the linked list is unaffected by long-lived tuples;
//   * the k-ordered trees slow down (end-time nodes live much longer
//     before garbage collection);
//   * paradoxically the plain aggregation tree IMPROVES on sorted input,
//     because the long tuples' end timestamps pre-populate the right side
//     of the tree and de-linearize it (Section 6.1's observation).

#include "bench/bench_util.h"
#include "core/aggregation_tree.h"
#include "core/k_ordered_tree.h"
#include "core/linked_list_agg.h"

namespace tagg {
namespace {

constexpr double kLongLived = 0.8;
constexpr double kKPct = 0.02;

void BM_Fig8_LinkedList(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto periods = bench::MakePeriods(n, kLongLived, TupleOrder::kSorted);
  bench::RunCountBench(state, periods,
                       [] { return LinkedListAggregator<CountOp>(); });
}

void BM_Fig8_AggregationTree_Sorted(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto periods = bench::MakePeriods(n, kLongLived, TupleOrder::kSorted);
  bench::RunCountBench(
      state, periods, [] { return AggregationTreeAggregator<CountOp>(); });
}

void BM_Fig8_Ktree(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto k = state.range(1);
  const auto periods = bench::MakePeriods(
      n, kLongLived, TupleOrder::kKOrdered, k, kKPct);
  bench::RunCountBench(
      state, periods, [k] { return KOrderedTreeAggregator<CountOp>(k); });
}

void BM_Fig8_Ktree_Sorted_K1(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto periods = bench::MakePeriods(n, kLongLived, TupleOrder::kSorted);
  bench::RunCountBench(
      state, periods, [] { return KOrderedTreeAggregator<CountOp>(1); });
}

BENCHMARK(BM_Fig8_LinkedList)
    ->RangeMultiplier(2)
    ->Range(bench::kMinTuples, bench::kMaxTuples)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Fig8_AggregationTree_Sorted)
    ->RangeMultiplier(2)
    ->Range(bench::kMinTuples, bench::kMaxTuples)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Fig8_Ktree)
    ->ArgsProduct({benchmark::CreateRange(bench::kMinTuples,
                                          bench::kMaxTuples, 2),
                   {4, 40, 400}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Fig8_Ktree_Sorted_K1)
    ->RangeMultiplier(2)
    ->Range(bench::kMinTuples, bench::kMaxTuples)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tagg

TAGG_BENCH_MAIN()
