# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/temporal_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
add_test(taggsql_smoke "sh" "-c" "printf 'analyze employed\\nSELECT COUNT(name) FROM employed\\nEXPLAIN SELECT COUNT(*) FROM employed\\nquit\\n' | /root/repo/build/examples/taggsql | grep -q '\\[18, 20\\]'")
set_tests_properties(taggsql_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;71;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(taggsql_rejects_bad_input "sh" "-c" "echo 'SELECT bogus(' | /root/repo/build/examples/taggsql; test \$? -eq 1")
set_tests_properties(taggsql_rejects_bad_input PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;74;add_test;/root/repo/tests/CMakeLists.txt;0;")
