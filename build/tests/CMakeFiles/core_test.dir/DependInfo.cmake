
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/aggregates_test.cc" "tests/CMakeFiles/core_test.dir/core/aggregates_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/aggregates_test.cc.o.d"
  "/root/repo/tests/core/aggregation_tree_test.cc" "tests/CMakeFiles/core_test.dir/core/aggregation_tree_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/aggregation_tree_test.cc.o.d"
  "/root/repo/tests/core/analyze_test.cc" "tests/CMakeFiles/core_test.dir/core/analyze_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/analyze_test.cc.o.d"
  "/root/repo/tests/core/balanced_tree_test.cc" "tests/CMakeFiles/core_test.dir/core/balanced_tree_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/balanced_tree_test.cc.o.d"
  "/root/repo/tests/core/complexity_test.cc" "tests/CMakeFiles/core_test.dir/core/complexity_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/complexity_test.cc.o.d"
  "/root/repo/tests/core/constant_interval_test.cc" "tests/CMakeFiles/core_test.dir/core/constant_interval_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/constant_interval_test.cc.o.d"
  "/root/repo/tests/core/duplicate_timestamps_test.cc" "tests/CMakeFiles/core_test.dir/core/duplicate_timestamps_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/duplicate_timestamps_test.cc.o.d"
  "/root/repo/tests/core/employed_example_test.cc" "tests/CMakeFiles/core_test.dir/core/employed_example_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/employed_example_test.cc.o.d"
  "/root/repo/tests/core/flat_tree_test.cc" "tests/CMakeFiles/core_test.dir/core/flat_tree_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/flat_tree_test.cc.o.d"
  "/root/repo/tests/core/k_ordered_gc_invariant_test.cc" "tests/CMakeFiles/core_test.dir/core/k_ordered_gc_invariant_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/k_ordered_gc_invariant_test.cc.o.d"
  "/root/repo/tests/core/k_ordered_tree_test.cc" "tests/CMakeFiles/core_test.dir/core/k_ordered_tree_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/k_ordered_tree_test.cc.o.d"
  "/root/repo/tests/core/linked_list_test.cc" "tests/CMakeFiles/core_test.dir/core/linked_list_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/linked_list_test.cc.o.d"
  "/root/repo/tests/core/multi_agg_test.cc" "tests/CMakeFiles/core_test.dir/core/multi_agg_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/multi_agg_test.cc.o.d"
  "/root/repo/tests/core/node_arena_test.cc" "tests/CMakeFiles/core_test.dir/core/node_arena_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/node_arena_test.cc.o.d"
  "/root/repo/tests/core/page_randomizer_test.cc" "tests/CMakeFiles/core_test.dir/core/page_randomizer_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/page_randomizer_test.cc.o.d"
  "/root/repo/tests/core/partitioned_agg_test.cc" "tests/CMakeFiles/core_test.dir/core/partitioned_agg_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/partitioned_agg_test.cc.o.d"
  "/root/repo/tests/core/planner_test.cc" "tests/CMakeFiles/core_test.dir/core/planner_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/planner_test.cc.o.d"
  "/root/repo/tests/core/property_test.cc" "tests/CMakeFiles/core_test.dir/core/property_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/property_test.cc.o.d"
  "/root/repo/tests/core/sortedness_test.cc" "tests/CMakeFiles/core_test.dir/core/sortedness_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/sortedness_test.cc.o.d"
  "/root/repo/tests/core/span_agg_test.cc" "tests/CMakeFiles/core_test.dir/core/span_agg_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/span_agg_test.cc.o.d"
  "/root/repo/tests/core/two_scan_test.cc" "tests/CMakeFiles/core_test.dir/core/two_scan_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/two_scan_test.cc.o.d"
  "/root/repo/tests/core/workload_test.cc" "tests/CMakeFiles/core_test.dir/core/workload_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tagg_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tagg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tagg_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tagg_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tagg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
