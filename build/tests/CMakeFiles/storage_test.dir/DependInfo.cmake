
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/storage/buffer_pool_test.cc" "tests/CMakeFiles/storage_test.dir/storage/buffer_pool_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/buffer_pool_test.cc.o.d"
  "/root/repo/tests/storage/external_sort_test.cc" "tests/CMakeFiles/storage_test.dir/storage/external_sort_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/external_sort_test.cc.o.d"
  "/root/repo/tests/storage/heap_file_test.cc" "tests/CMakeFiles/storage_test.dir/storage/heap_file_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/heap_file_test.cc.o.d"
  "/root/repo/tests/storage/page_test.cc" "tests/CMakeFiles/storage_test.dir/storage/page_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/page_test.cc.o.d"
  "/root/repo/tests/storage/pipeline_test.cc" "tests/CMakeFiles/storage_test.dir/storage/pipeline_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/pipeline_test.cc.o.d"
  "/root/repo/tests/storage/record_codec_test.cc" "tests/CMakeFiles/storage_test.dir/storage/record_codec_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/record_codec_test.cc.o.d"
  "/root/repo/tests/storage/relation_io_test.cc" "tests/CMakeFiles/storage_test.dir/storage/relation_io_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/relation_io_test.cc.o.d"
  "/root/repo/tests/storage/table_scan_test.cc" "tests/CMakeFiles/storage_test.dir/storage/table_scan_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/table_scan_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tagg_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tagg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tagg_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tagg_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tagg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
