file(REMOVE_RECURSE
  "CMakeFiles/temporal_test.dir/temporal/algebra_property_test.cc.o"
  "CMakeFiles/temporal_test.dir/temporal/algebra_property_test.cc.o.d"
  "CMakeFiles/temporal_test.dir/temporal/algebra_test.cc.o"
  "CMakeFiles/temporal_test.dir/temporal/algebra_test.cc.o.d"
  "CMakeFiles/temporal_test.dir/temporal/catalog_test.cc.o"
  "CMakeFiles/temporal_test.dir/temporal/catalog_test.cc.o.d"
  "CMakeFiles/temporal_test.dir/temporal/csv_test.cc.o"
  "CMakeFiles/temporal_test.dir/temporal/csv_test.cc.o.d"
  "CMakeFiles/temporal_test.dir/temporal/period_test.cc.o"
  "CMakeFiles/temporal_test.dir/temporal/period_test.cc.o.d"
  "CMakeFiles/temporal_test.dir/temporal/relation_test.cc.o"
  "CMakeFiles/temporal_test.dir/temporal/relation_test.cc.o.d"
  "CMakeFiles/temporal_test.dir/temporal/schema_test.cc.o"
  "CMakeFiles/temporal_test.dir/temporal/schema_test.cc.o.d"
  "CMakeFiles/temporal_test.dir/temporal/value_test.cc.o"
  "CMakeFiles/temporal_test.dir/temporal/value_test.cc.o.d"
  "temporal_test"
  "temporal_test.pdb"
  "temporal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
