
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/temporal/algebra_property_test.cc" "tests/CMakeFiles/temporal_test.dir/temporal/algebra_property_test.cc.o" "gcc" "tests/CMakeFiles/temporal_test.dir/temporal/algebra_property_test.cc.o.d"
  "/root/repo/tests/temporal/algebra_test.cc" "tests/CMakeFiles/temporal_test.dir/temporal/algebra_test.cc.o" "gcc" "tests/CMakeFiles/temporal_test.dir/temporal/algebra_test.cc.o.d"
  "/root/repo/tests/temporal/catalog_test.cc" "tests/CMakeFiles/temporal_test.dir/temporal/catalog_test.cc.o" "gcc" "tests/CMakeFiles/temporal_test.dir/temporal/catalog_test.cc.o.d"
  "/root/repo/tests/temporal/csv_test.cc" "tests/CMakeFiles/temporal_test.dir/temporal/csv_test.cc.o" "gcc" "tests/CMakeFiles/temporal_test.dir/temporal/csv_test.cc.o.d"
  "/root/repo/tests/temporal/period_test.cc" "tests/CMakeFiles/temporal_test.dir/temporal/period_test.cc.o" "gcc" "tests/CMakeFiles/temporal_test.dir/temporal/period_test.cc.o.d"
  "/root/repo/tests/temporal/relation_test.cc" "tests/CMakeFiles/temporal_test.dir/temporal/relation_test.cc.o" "gcc" "tests/CMakeFiles/temporal_test.dir/temporal/relation_test.cc.o.d"
  "/root/repo/tests/temporal/schema_test.cc" "tests/CMakeFiles/temporal_test.dir/temporal/schema_test.cc.o" "gcc" "tests/CMakeFiles/temporal_test.dir/temporal/schema_test.cc.o.d"
  "/root/repo/tests/temporal/value_test.cc" "tests/CMakeFiles/temporal_test.dir/temporal/value_test.cc.o" "gcc" "tests/CMakeFiles/temporal_test.dir/temporal/value_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tagg_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tagg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tagg_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tagg_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tagg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
