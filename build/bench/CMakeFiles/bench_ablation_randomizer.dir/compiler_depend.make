# Empty compiler generated dependencies file for bench_ablation_randomizer.
# This may be replaced when dependencies are built.
