file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_randomizer.dir/bench_ablation_randomizer.cc.o"
  "CMakeFiles/bench_ablation_randomizer.dir/bench_ablation_randomizer.cc.o.d"
  "bench_ablation_randomizer"
  "bench_ablation_randomizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_randomizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
