# Empty compiler generated dependencies file for bench_ablation_aggregates.
# This may be replaced when dependencies are built.
