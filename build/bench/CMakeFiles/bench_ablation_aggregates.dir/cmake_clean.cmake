file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_aggregates.dir/bench_ablation_aggregates.cc.o"
  "CMakeFiles/bench_ablation_aggregates.dir/bench_ablation_aggregates.cc.o.d"
  "bench_ablation_aggregates"
  "bench_ablation_aggregates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_aggregates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
