# Empty dependencies file for bench_fig8_longlived.
# This may be replaced when dependencies are built.
