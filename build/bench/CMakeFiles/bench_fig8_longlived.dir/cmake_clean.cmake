file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_longlived.dir/bench_fig8_longlived.cc.o"
  "CMakeFiles/bench_fig8_longlived.dir/bench_fig8_longlived.cc.o.d"
  "bench_fig8_longlived"
  "bench_fig8_longlived.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_longlived.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
