# Empty compiler generated dependencies file for bench_ablation_balanced.
# This may be replaced when dependencies are built.
