file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_balanced.dir/bench_ablation_balanced.cc.o"
  "CMakeFiles/bench_ablation_balanced.dir/bench_ablation_balanced.cc.o.d"
  "bench_ablation_balanced"
  "bench_ablation_balanced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_balanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
