file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_sortedness.dir/bench_table2_sortedness.cc.o"
  "CMakeFiles/bench_table2_sortedness.dir/bench_table2_sortedness.cc.o.d"
  "bench_table2_sortedness"
  "bench_table2_sortedness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_sortedness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
