# Empty dependencies file for bench_table2_sortedness.
# This may be replaced when dependencies are built.
