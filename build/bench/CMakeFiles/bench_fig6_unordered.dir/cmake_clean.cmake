file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_unordered.dir/bench_fig6_unordered.cc.o"
  "CMakeFiles/bench_fig6_unordered.dir/bench_fig6_unordered.cc.o.d"
  "bench_fig6_unordered"
  "bench_fig6_unordered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_unordered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
