# Empty compiler generated dependencies file for bench_fig6_unordered.
# This may be replaced when dependencies are built.
