# Empty compiler generated dependencies file for bench_ablation_span.
# This may be replaced when dependencies are built.
