file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_span.dir/bench_ablation_span.cc.o"
  "CMakeFiles/bench_ablation_span.dir/bench_ablation_span.cc.o.d"
  "bench_ablation_span"
  "bench_ablation_span.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_span.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
