# Empty dependencies file for bench_ablation_multiagg.
# This may be replaced when dependencies are built.
