file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multiagg.dir/bench_ablation_multiagg.cc.o"
  "CMakeFiles/bench_ablation_multiagg.dir/bench_ablation_multiagg.cc.o.d"
  "bench_ablation_multiagg"
  "bench_ablation_multiagg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multiagg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
