file(REMOVE_RECURSE
  "CMakeFiles/bench_twoscan_baseline.dir/bench_twoscan_baseline.cc.o"
  "CMakeFiles/bench_twoscan_baseline.dir/bench_twoscan_baseline.cc.o.d"
  "bench_twoscan_baseline"
  "bench_twoscan_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_twoscan_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
