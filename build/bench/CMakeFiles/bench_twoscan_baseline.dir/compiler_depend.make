# Empty compiler generated dependencies file for bench_twoscan_baseline.
# This may be replaced when dependencies are built.
