# Empty dependencies file for bench_ablation_unique_timestamps.
# This may be replaced when dependencies are built.
