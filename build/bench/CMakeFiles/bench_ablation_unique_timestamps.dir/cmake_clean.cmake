file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_unique_timestamps.dir/bench_ablation_unique_timestamps.cc.o"
  "CMakeFiles/bench_ablation_unique_timestamps.dir/bench_ablation_unique_timestamps.cc.o.d"
  "bench_ablation_unique_timestamps"
  "bench_ablation_unique_timestamps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_unique_timestamps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
