# Empty compiler generated dependencies file for payroll_history.
# This may be replaced when dependencies are built.
