file(REMOVE_RECURSE
  "CMakeFiles/payroll_history.dir/payroll_history.cc.o"
  "CMakeFiles/payroll_history.dir/payroll_history.cc.o.d"
  "payroll_history"
  "payroll_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payroll_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
