file(REMOVE_RECURSE
  "CMakeFiles/taggsql.dir/taggsql.cc.o"
  "CMakeFiles/taggsql.dir/taggsql.cc.o.d"
  "taggsql"
  "taggsql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taggsql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
