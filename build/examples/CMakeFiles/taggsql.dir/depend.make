# Empty dependencies file for taggsql.
# This may be replaced when dependencies are built.
