file(REMOVE_RECURSE
  "CMakeFiles/net_sessions.dir/net_sessions.cc.o"
  "CMakeFiles/net_sessions.dir/net_sessions.cc.o.d"
  "net_sessions"
  "net_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
