# Empty dependencies file for net_sessions.
# This may be replaced when dependencies are built.
