# Empty dependencies file for tagg_query.
# This may be replaced when dependencies are built.
