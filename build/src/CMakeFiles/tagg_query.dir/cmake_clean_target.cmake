file(REMOVE_RECURSE
  "libtagg_query.a"
)
