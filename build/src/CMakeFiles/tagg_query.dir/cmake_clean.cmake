file(REMOVE_RECURSE
  "CMakeFiles/tagg_query.dir/query/analyzer.cc.o"
  "CMakeFiles/tagg_query.dir/query/analyzer.cc.o.d"
  "CMakeFiles/tagg_query.dir/query/executor.cc.o"
  "CMakeFiles/tagg_query.dir/query/executor.cc.o.d"
  "CMakeFiles/tagg_query.dir/query/lexer.cc.o"
  "CMakeFiles/tagg_query.dir/query/lexer.cc.o.d"
  "CMakeFiles/tagg_query.dir/query/parser.cc.o"
  "CMakeFiles/tagg_query.dir/query/parser.cc.o.d"
  "CMakeFiles/tagg_query.dir/query/token.cc.o"
  "CMakeFiles/tagg_query.dir/query/token.cc.o.d"
  "libtagg_query.a"
  "libtagg_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagg_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
