
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregates.cc" "src/CMakeFiles/tagg_core.dir/core/aggregates.cc.o" "gcc" "src/CMakeFiles/tagg_core.dir/core/aggregates.cc.o.d"
  "/root/repo/src/core/analyze.cc" "src/CMakeFiles/tagg_core.dir/core/analyze.cc.o" "gcc" "src/CMakeFiles/tagg_core.dir/core/analyze.cc.o.d"
  "/root/repo/src/core/constant_interval.cc" "src/CMakeFiles/tagg_core.dir/core/constant_interval.cc.o" "gcc" "src/CMakeFiles/tagg_core.dir/core/constant_interval.cc.o.d"
  "/root/repo/src/core/multi_agg.cc" "src/CMakeFiles/tagg_core.dir/core/multi_agg.cc.o" "gcc" "src/CMakeFiles/tagg_core.dir/core/multi_agg.cc.o.d"
  "/root/repo/src/core/node_arena.cc" "src/CMakeFiles/tagg_core.dir/core/node_arena.cc.o" "gcc" "src/CMakeFiles/tagg_core.dir/core/node_arena.cc.o.d"
  "/root/repo/src/core/page_randomizer.cc" "src/CMakeFiles/tagg_core.dir/core/page_randomizer.cc.o" "gcc" "src/CMakeFiles/tagg_core.dir/core/page_randomizer.cc.o.d"
  "/root/repo/src/core/partitioned_agg.cc" "src/CMakeFiles/tagg_core.dir/core/partitioned_agg.cc.o" "gcc" "src/CMakeFiles/tagg_core.dir/core/partitioned_agg.cc.o.d"
  "/root/repo/src/core/planner.cc" "src/CMakeFiles/tagg_core.dir/core/planner.cc.o" "gcc" "src/CMakeFiles/tagg_core.dir/core/planner.cc.o.d"
  "/root/repo/src/core/sortedness.cc" "src/CMakeFiles/tagg_core.dir/core/sortedness.cc.o" "gcc" "src/CMakeFiles/tagg_core.dir/core/sortedness.cc.o.d"
  "/root/repo/src/core/span_agg.cc" "src/CMakeFiles/tagg_core.dir/core/span_agg.cc.o" "gcc" "src/CMakeFiles/tagg_core.dir/core/span_agg.cc.o.d"
  "/root/repo/src/core/workload.cc" "src/CMakeFiles/tagg_core.dir/core/workload.cc.o" "gcc" "src/CMakeFiles/tagg_core.dir/core/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tagg_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tagg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
