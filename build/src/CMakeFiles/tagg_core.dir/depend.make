# Empty dependencies file for tagg_core.
# This may be replaced when dependencies are built.
