file(REMOVE_RECURSE
  "libtagg_core.a"
)
