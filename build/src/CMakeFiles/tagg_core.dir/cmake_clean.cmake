file(REMOVE_RECURSE
  "CMakeFiles/tagg_core.dir/core/aggregates.cc.o"
  "CMakeFiles/tagg_core.dir/core/aggregates.cc.o.d"
  "CMakeFiles/tagg_core.dir/core/analyze.cc.o"
  "CMakeFiles/tagg_core.dir/core/analyze.cc.o.d"
  "CMakeFiles/tagg_core.dir/core/constant_interval.cc.o"
  "CMakeFiles/tagg_core.dir/core/constant_interval.cc.o.d"
  "CMakeFiles/tagg_core.dir/core/multi_agg.cc.o"
  "CMakeFiles/tagg_core.dir/core/multi_agg.cc.o.d"
  "CMakeFiles/tagg_core.dir/core/node_arena.cc.o"
  "CMakeFiles/tagg_core.dir/core/node_arena.cc.o.d"
  "CMakeFiles/tagg_core.dir/core/page_randomizer.cc.o"
  "CMakeFiles/tagg_core.dir/core/page_randomizer.cc.o.d"
  "CMakeFiles/tagg_core.dir/core/partitioned_agg.cc.o"
  "CMakeFiles/tagg_core.dir/core/partitioned_agg.cc.o.d"
  "CMakeFiles/tagg_core.dir/core/planner.cc.o"
  "CMakeFiles/tagg_core.dir/core/planner.cc.o.d"
  "CMakeFiles/tagg_core.dir/core/sortedness.cc.o"
  "CMakeFiles/tagg_core.dir/core/sortedness.cc.o.d"
  "CMakeFiles/tagg_core.dir/core/span_agg.cc.o"
  "CMakeFiles/tagg_core.dir/core/span_agg.cc.o.d"
  "CMakeFiles/tagg_core.dir/core/workload.cc.o"
  "CMakeFiles/tagg_core.dir/core/workload.cc.o.d"
  "libtagg_core.a"
  "libtagg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
