file(REMOVE_RECURSE
  "CMakeFiles/tagg_storage.dir/storage/buffer_pool.cc.o"
  "CMakeFiles/tagg_storage.dir/storage/buffer_pool.cc.o.d"
  "CMakeFiles/tagg_storage.dir/storage/external_sort.cc.o"
  "CMakeFiles/tagg_storage.dir/storage/external_sort.cc.o.d"
  "CMakeFiles/tagg_storage.dir/storage/heap_file.cc.o"
  "CMakeFiles/tagg_storage.dir/storage/heap_file.cc.o.d"
  "CMakeFiles/tagg_storage.dir/storage/record_codec.cc.o"
  "CMakeFiles/tagg_storage.dir/storage/record_codec.cc.o.d"
  "CMakeFiles/tagg_storage.dir/storage/relation_io.cc.o"
  "CMakeFiles/tagg_storage.dir/storage/relation_io.cc.o.d"
  "CMakeFiles/tagg_storage.dir/storage/table_scan.cc.o"
  "CMakeFiles/tagg_storage.dir/storage/table_scan.cc.o.d"
  "libtagg_storage.a"
  "libtagg_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagg_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
