file(REMOVE_RECURSE
  "libtagg_storage.a"
)
