# Empty dependencies file for tagg_storage.
# This may be replaced when dependencies are built.
