
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/tagg_storage.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/tagg_storage.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/external_sort.cc" "src/CMakeFiles/tagg_storage.dir/storage/external_sort.cc.o" "gcc" "src/CMakeFiles/tagg_storage.dir/storage/external_sort.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "src/CMakeFiles/tagg_storage.dir/storage/heap_file.cc.o" "gcc" "src/CMakeFiles/tagg_storage.dir/storage/heap_file.cc.o.d"
  "/root/repo/src/storage/record_codec.cc" "src/CMakeFiles/tagg_storage.dir/storage/record_codec.cc.o" "gcc" "src/CMakeFiles/tagg_storage.dir/storage/record_codec.cc.o.d"
  "/root/repo/src/storage/relation_io.cc" "src/CMakeFiles/tagg_storage.dir/storage/relation_io.cc.o" "gcc" "src/CMakeFiles/tagg_storage.dir/storage/relation_io.cc.o.d"
  "/root/repo/src/storage/table_scan.cc" "src/CMakeFiles/tagg_storage.dir/storage/table_scan.cc.o" "gcc" "src/CMakeFiles/tagg_storage.dir/storage/table_scan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tagg_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tagg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
