file(REMOVE_RECURSE
  "libtagg_util.a"
)
