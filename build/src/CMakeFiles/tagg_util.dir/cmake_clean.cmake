file(REMOVE_RECURSE
  "CMakeFiles/tagg_util.dir/util/logging.cc.o"
  "CMakeFiles/tagg_util.dir/util/logging.cc.o.d"
  "CMakeFiles/tagg_util.dir/util/random.cc.o"
  "CMakeFiles/tagg_util.dir/util/random.cc.o.d"
  "CMakeFiles/tagg_util.dir/util/status.cc.o"
  "CMakeFiles/tagg_util.dir/util/status.cc.o.d"
  "CMakeFiles/tagg_util.dir/util/str.cc.o"
  "CMakeFiles/tagg_util.dir/util/str.cc.o.d"
  "libtagg_util.a"
  "libtagg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
