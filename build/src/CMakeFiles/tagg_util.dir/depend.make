# Empty dependencies file for tagg_util.
# This may be replaced when dependencies are built.
