file(REMOVE_RECURSE
  "libtagg_temporal.a"
)
