file(REMOVE_RECURSE
  "CMakeFiles/tagg_temporal.dir/temporal/algebra.cc.o"
  "CMakeFiles/tagg_temporal.dir/temporal/algebra.cc.o.d"
  "CMakeFiles/tagg_temporal.dir/temporal/catalog.cc.o"
  "CMakeFiles/tagg_temporal.dir/temporal/catalog.cc.o.d"
  "CMakeFiles/tagg_temporal.dir/temporal/csv.cc.o"
  "CMakeFiles/tagg_temporal.dir/temporal/csv.cc.o.d"
  "CMakeFiles/tagg_temporal.dir/temporal/period.cc.o"
  "CMakeFiles/tagg_temporal.dir/temporal/period.cc.o.d"
  "CMakeFiles/tagg_temporal.dir/temporal/relation.cc.o"
  "CMakeFiles/tagg_temporal.dir/temporal/relation.cc.o.d"
  "CMakeFiles/tagg_temporal.dir/temporal/schema.cc.o"
  "CMakeFiles/tagg_temporal.dir/temporal/schema.cc.o.d"
  "CMakeFiles/tagg_temporal.dir/temporal/tuple.cc.o"
  "CMakeFiles/tagg_temporal.dir/temporal/tuple.cc.o.d"
  "CMakeFiles/tagg_temporal.dir/temporal/value.cc.o"
  "CMakeFiles/tagg_temporal.dir/temporal/value.cc.o.d"
  "libtagg_temporal.a"
  "libtagg_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagg_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
