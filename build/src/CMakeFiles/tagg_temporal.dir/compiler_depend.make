# Empty compiler generated dependencies file for tagg_temporal.
# This may be replaced when dependencies are built.
