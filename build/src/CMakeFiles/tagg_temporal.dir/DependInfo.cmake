
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/temporal/algebra.cc" "src/CMakeFiles/tagg_temporal.dir/temporal/algebra.cc.o" "gcc" "src/CMakeFiles/tagg_temporal.dir/temporal/algebra.cc.o.d"
  "/root/repo/src/temporal/catalog.cc" "src/CMakeFiles/tagg_temporal.dir/temporal/catalog.cc.o" "gcc" "src/CMakeFiles/tagg_temporal.dir/temporal/catalog.cc.o.d"
  "/root/repo/src/temporal/csv.cc" "src/CMakeFiles/tagg_temporal.dir/temporal/csv.cc.o" "gcc" "src/CMakeFiles/tagg_temporal.dir/temporal/csv.cc.o.d"
  "/root/repo/src/temporal/period.cc" "src/CMakeFiles/tagg_temporal.dir/temporal/period.cc.o" "gcc" "src/CMakeFiles/tagg_temporal.dir/temporal/period.cc.o.d"
  "/root/repo/src/temporal/relation.cc" "src/CMakeFiles/tagg_temporal.dir/temporal/relation.cc.o" "gcc" "src/CMakeFiles/tagg_temporal.dir/temporal/relation.cc.o.d"
  "/root/repo/src/temporal/schema.cc" "src/CMakeFiles/tagg_temporal.dir/temporal/schema.cc.o" "gcc" "src/CMakeFiles/tagg_temporal.dir/temporal/schema.cc.o.d"
  "/root/repo/src/temporal/tuple.cc" "src/CMakeFiles/tagg_temporal.dir/temporal/tuple.cc.o" "gcc" "src/CMakeFiles/tagg_temporal.dir/temporal/tuple.cc.o.d"
  "/root/repo/src/temporal/value.cc" "src/CMakeFiles/tagg_temporal.dir/temporal/value.cc.o" "gcc" "src/CMakeFiles/tagg_temporal.dir/temporal/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tagg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
