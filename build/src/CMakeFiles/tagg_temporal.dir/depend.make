# Empty dependencies file for tagg_temporal.
# This may be replaced when dependencies are built.
